// Tests for latency models, the network fabric and the simulation bundle.

#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace sbqa::sim {
namespace {

TEST(LatencyTest, ConstantAlwaysSame) {
  util::Rng rng(1);
  ConstantLatency model(0.05);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.Sample(rng), 0.05);
}

TEST(LatencyTest, UniformWithinBounds) {
  util::Rng rng(2);
  UniformLatency model(0.01, 0.03);
  for (int i = 0; i < 10000; ++i) {
    const double v = model.Sample(rng);
    EXPECT_GE(v, 0.01);
    EXPECT_LE(v, 0.03);
  }
}

TEST(LatencyTest, LogNormalMedianRoughlyCorrect) {
  util::Rng rng(3);
  LogNormalLatency model(0.020, 0.5);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.Sample(rng) < 0.020) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(LatencyTest, LogNormalRespectsFloor) {
  util::Rng rng(4);
  LogNormalLatency model(0.010, 1.5, 0.005);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(model.Sample(rng), 0.005);
}

TEST(NetworkTest, DeliversAfterLatency) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(5),
              std::make_unique<ConstantLatency>(0.1));
  double delivered_at = -1;
  net.Send([&] { delivered_at = scheduler.now(); });
  scheduler.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.1);
}

TEST(NetworkTest, CountsMessagesAndLatency) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(6),
              std::make_unique<ConstantLatency>(0.2));
  net.Send([] {});
  net.Send([] {});
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_DOUBLE_EQ(net.total_latency(), 0.4);
}

TEST(NetworkTest, ExplicitLatencyDelivery) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(7),
              std::make_unique<ConstantLatency>(99.0));
  double delivered_at = -1;
  net.SendWithLatency(0.5, [&] { delivered_at = scheduler.now(); });
  scheduler.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.5);
}

TEST(NetworkTest, CancellableDelivery) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(8),
              std::make_unique<ConstantLatency>(0.1));
  bool delivered = false;
  const EventId id = net.Send([&] { delivered = true; });
  scheduler.Cancel(id);
  scheduler.Run();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, BatchingOffDeliversExactly) {
  // batch_tick == 0 (default): SendTo behaves exactly like SendWithLatency.
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(9),
              std::make_unique<ConstantLatency>(0.1));
  const Network::Destination inbox = net.RegisterDestination();
  double delivered_at = -1;
  net.SendToWithLatency(inbox, 0.25, [&] { delivered_at = scheduler.now(); });
  scheduler.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.25);
  EXPECT_EQ(net.batches_dispatched(), 0u);
  EXPECT_EQ(net.messages_coalesced(), 0u);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(NetworkTest, SameTickSameDestinationCoalescesIntoOneEvent) {
  Scheduler scheduler;
  NetworkConfig config;
  config.batch_tick = 0.010;
  Network net(&scheduler, util::Rng(10),
              std::make_unique<ConstantLatency>(0.003), config);
  const Network::Destination inbox = net.RegisterDestination();
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net.SendTo(inbox, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(scheduler.pending(), 1u);  // one event for the whole batch
  scheduler.Run();
  // FIFO within the batch, delivered at the tick's upper boundary.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(scheduler.now(), 0.010);
  EXPECT_EQ(net.batches_dispatched(), 1u);
  EXPECT_EQ(net.messages_coalesced(), 4u);
  EXPECT_EQ(net.messages_sent(), 5u);
}

TEST(NetworkTest, DifferentDestinationsDoNotCoalesce) {
  Scheduler scheduler;
  NetworkConfig config;
  config.batch_tick = 0.010;
  Network net(&scheduler, util::Rng(11),
              std::make_unique<ConstantLatency>(0.003), config);
  const Network::Destination a = net.RegisterDestination();
  const Network::Destination b = net.RegisterDestination();
  int fired = 0;
  net.SendTo(a, [&] { ++fired; });
  net.SendTo(b, [&] { ++fired; });
  EXPECT_EQ(scheduler.pending(), 2u);
  scheduler.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(net.batches_dispatched(), 2u);
  EXPECT_EQ(net.messages_coalesced(), 0u);
}

TEST(NetworkTest, DifferentTicksOpenSeparateBatches) {
  Scheduler scheduler;
  NetworkConfig config;
  config.batch_tick = 0.010;
  Network net(&scheduler, util::Rng(12),
              std::make_unique<ConstantLatency>(99.0), config);
  const Network::Destination inbox = net.RegisterDestination();
  std::vector<double> delivered_at;
  net.SendToWithLatency(inbox, 0.003,
                        [&] { delivered_at.push_back(scheduler.now()); });
  net.SendToWithLatency(inbox, 0.013,
                        [&] { delivered_at.push_back(scheduler.now()); });
  EXPECT_EQ(scheduler.pending(), 2u);
  scheduler.Run();
  ASSERT_EQ(delivered_at.size(), 2u);
  EXPECT_DOUBLE_EQ(delivered_at[0], 0.010);
  EXPECT_DOUBLE_EQ(delivered_at[1], 0.020);
}

TEST(NetworkTest, BatchedDeliveryNeverEarlierThanSampledLatency) {
  Scheduler scheduler;
  NetworkConfig config;
  config.batch_tick = 0.004;
  Network net(&scheduler, util::Rng(13),
              std::make_unique<UniformLatency>(0.001, 0.02), config);
  const Network::Destination inbox = net.RegisterDestination();
  // Spot-check the quantization invariant over many sampled latencies.
  for (int i = 0; i < 200; ++i) {
    const double latency = net.SampleLatency();
    const double sent_at = scheduler.now();
    double delivered = -1;
    net.SendToWithLatency(inbox, latency,
                          [&delivered, &scheduler] { delivered = scheduler.now(); });
    scheduler.Run();
    EXPECT_GE(delivered, sent_at + latency - 1e-12);
    EXPECT_LE(delivered, sent_at + latency + config.batch_tick + 1e-12);
  }
}

TEST(NetworkTest, BatchCallbacksMayOpenNewBatches) {
  // A delivery that sends again (the mediator's dispatch pattern) must not
  // corrupt the recycled batch pool.
  Scheduler scheduler;
  NetworkConfig config;
  config.batch_tick = 0.010;
  Network net(&scheduler, util::Rng(14),
              std::make_unique<ConstantLatency>(0.003), config);
  const Network::Destination inbox = net.RegisterDestination();
  int depth = 0;
  std::function<void()> resend = [&] {
    if (++depth < 5) net.SendTo(inbox, resend);
  };
  net.SendTo(inbox, resend);
  scheduler.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(net.messages_sent(), 5u);
}

TEST(SimulationTest, BatchTickPlumbsThroughConfig) {
  SimulationConfig config;
  config.delivery_batch_tick = 0.005;
  Simulation sim(config);
  EXPECT_DOUBLE_EQ(sim.network().config().batch_tick, 0.005);
}

TEST(SimulationTest, DeterministicAcrossInstances) {
  SimulationConfig config;
  config.seed = 123;
  Simulation a(config), b(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rng().Next(), b.rng().Next());
    EXPECT_DOUBLE_EQ(a.network().SampleLatency(), b.network().SampleLatency());
  }
}

TEST(SimulationTest, NewRngStreamsAreIndependent) {
  Simulation sim;
  util::Rng r1 = sim.NewRng();
  util::Rng r2 = sim.NewRng();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r1.Next() == r2.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(SimulationTest, ZeroSigmaGivesConstantLatency) {
  SimulationConfig config;
  config.latency_sigma = 0;
  config.latency_median = 0.042;
  Simulation sim(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sim.network().SampleLatency(), 0.042);
  }
}

TEST(SimulationTest, RunUntilAdvancesClock) {
  Simulation sim;
  sim.RunUntil(12.5);
  EXPECT_DOUBLE_EQ(sim.now(), 12.5);
  sim.RunFor(2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);
}

}  // namespace
}  // namespace sbqa::sim
