// Tests for latency models, the network fabric and the simulation bundle.

#include <memory>

#include <gtest/gtest.h>

#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace sbqa::sim {
namespace {

TEST(LatencyTest, ConstantAlwaysSame) {
  util::Rng rng(1);
  ConstantLatency model(0.05);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.Sample(rng), 0.05);
}

TEST(LatencyTest, UniformWithinBounds) {
  util::Rng rng(2);
  UniformLatency model(0.01, 0.03);
  for (int i = 0; i < 10000; ++i) {
    const double v = model.Sample(rng);
    EXPECT_GE(v, 0.01);
    EXPECT_LE(v, 0.03);
  }
}

TEST(LatencyTest, LogNormalMedianRoughlyCorrect) {
  util::Rng rng(3);
  LogNormalLatency model(0.020, 0.5);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.Sample(rng) < 0.020) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(LatencyTest, LogNormalRespectsFloor) {
  util::Rng rng(4);
  LogNormalLatency model(0.010, 1.5, 0.005);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(model.Sample(rng), 0.005);
}

TEST(NetworkTest, DeliversAfterLatency) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(5),
              std::make_unique<ConstantLatency>(0.1));
  double delivered_at = -1;
  net.Send([&] { delivered_at = scheduler.now(); });
  scheduler.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.1);
}

TEST(NetworkTest, CountsMessagesAndLatency) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(6),
              std::make_unique<ConstantLatency>(0.2));
  net.Send([] {});
  net.Send([] {});
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_DOUBLE_EQ(net.total_latency(), 0.4);
}

TEST(NetworkTest, ExplicitLatencyDelivery) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(7),
              std::make_unique<ConstantLatency>(99.0));
  double delivered_at = -1;
  net.SendWithLatency(0.5, [&] { delivered_at = scheduler.now(); });
  scheduler.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.5);
}

TEST(NetworkTest, CancellableDelivery) {
  Scheduler scheduler;
  Network net(&scheduler, util::Rng(8),
              std::make_unique<ConstantLatency>(0.1));
  bool delivered = false;
  const EventId id = net.Send([&] { delivered = true; });
  scheduler.Cancel(id);
  scheduler.Run();
  EXPECT_FALSE(delivered);
}

TEST(SimulationTest, DeterministicAcrossInstances) {
  SimulationConfig config;
  config.seed = 123;
  Simulation a(config), b(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rng().Next(), b.rng().Next());
    EXPECT_DOUBLE_EQ(a.network().SampleLatency(), b.network().SampleLatency());
  }
}

TEST(SimulationTest, NewRngStreamsAreIndependent) {
  Simulation sim;
  util::Rng r1 = sim.NewRng();
  util::Rng r2 = sim.NewRng();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r1.Next() == r2.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(SimulationTest, ZeroSigmaGivesConstantLatency) {
  SimulationConfig config;
  config.latency_sigma = 0;
  config.latency_median = 0.042;
  Simulation sim(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sim.network().SampleLatency(), 0.042);
  }
}

TEST(SimulationTest, RunUntilAdvancesClock) {
  Simulation sim;
  sim.RunUntil(12.5);
  EXPECT_DOUBLE_EQ(sim.now(), 12.5);
  sim.RunFor(2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);
}

}  // namespace
}  // namespace sbqa::sim
