// Allocation regression test for the federation forward path: once the
// pools are warm, a steady state in which a dry shard forwards every one
// of its queries through a multi-hop borrow chain (relay through a dry
// intermediate, mediate on the donor shard, re-home the outcome to the
// origin) performs ZERO heap allocations per query — the RouteState
// rides a provisioned StableSlotPool slot, the forward closure fits the
// EventFn inline buffer by static_assert, and the re-homing outcome uses
// the pooled slab protocol.
//
// Lives in its own test binary because it replaces the global operator
// new/delete (via util/counting_alloc.h; counting only).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/registry.h"
#include "core/sbqa.h"
#include "core/shard_directory.h"
#include "federation/federation.h"
#include "model/reputation.h"
#include "sim/shard_set.h"
#include "util/counting_alloc.h"
#include "util/rng.h"

namespace sbqa::federation {
namespace {

/// Hand-built 4-shard ring stack. Shards 0, 1 and 3 carry providers
/// restricted to class 0, shard 2 carries generalists: consumer 0's
/// class-1 queries always chain 0 -> 1 -> 2 (dry origin, dry relay,
/// donor), while consumers 1..3 mediate class 0 locally. Serial shard
/// execution for exact allocation accounting.
struct FederationHarness {
  static constexpr uint32_t kShards = 4;
  static constexpr size_t kProviders = 60;

  sim::SimulationConfig sim_config;
  std::unique_ptr<sim::ShardSet> shards;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::vector<std::unique_ptr<core::Mediator>> mediators;
  std::vector<core::Mediator*> mediator_ptrs;
  core::ShardDirectory directory;
  Federation federation;

  FederationHarness() {
    sim_config.seed = 99;
    sim_config.shard_count = kShards;
    sim_config.shard_use_threads = false;
    shards = std::make_unique<sim::ShardSet>(sim_config);

    util::Rng setup(5);
    core::ConsumerParams consumer_params;
    consumer_params.n_results = 3;
    for (uint32_t s = 0; s < kShards; ++s) {
      registry.AddConsumer(consumer_params);
    }
    for (size_t i = 0; i < kProviders; ++i) {
      core::ProviderParams params;
      params.capacity = setup.Uniform(0.5, 2.0);
      const model::ProviderId id = registry.AddProvider(params);
      for (uint32_t c = 0; c < kShards; ++c) {
        registry.provider(id).preferences().Set(static_cast<int32_t>(c),
                                                setup.Uniform(-1, 1));
        registry.consumer(static_cast<model::ConsumerId>(c))
            .preferences()
            .Set(id, setup.Uniform(-1, 1));
      }
    }
    registry.SetShardCount(kShards);
    // Contiguous blocks of 15: dry out every shard but 2 for class 1.
    for (model::ProviderId p = 0; p < kProviders; ++p) {
      if (registry.ProviderShard(p) != 2) {
        registry.provider(p).RestrictClasses({model::QueryClassId{0}});
      }
    }

    reputation =
        std::make_unique<model::ReputationRegistry>(registry.provider_count());
    core::SbqaParams sbqa_params;
    sbqa_params.knbest = core::KnBestParams{20, 8};
    for (uint32_t s = 0; s < kShards; ++s) {
      mediators.push_back(std::make_unique<core::Mediator>(
          &shards->shard(s), &registry, reputation.get(),
          std::make_unique<core::SbqaMethod>(sbqa_params),
          core::MediatorConfig{}));
      mediator_ptrs.push_back(mediators.back().get());
    }
    directory.Refresh(registry);

    FederationConfig fed_config;
    fed_config.enabled = true;
    fed_config.topology = TopologyKind::kRing;
    fed_config.hop_budget = 4;
    federation.Build(fed_config, kShards, &directory);

    for (uint32_t s = 0; s < kShards; ++s) {
      mediators[s]->ConfigureSharding(shards.get(), s, &directory,
                                      mediator_ptrs);
      mediators[s]->ConfigureFederation(&federation);
      mediators[s]->ProvisionInflight(256);
    }
    shards->AddBarrierHook([this](double) {
      directory.RefreshIfChanged(registry);
      for (core::Mediator* m : mediator_ptrs) {
        m->PublishFederationDigest(&federation.digest());
      }
    });
  }
};

TEST(FederationAllocTest, SteadyStateForwardAndRehomeAreAllocationFree) {
  FederationHarness harness;
  model::QueryId next_id = 0;
  double horizon = 0;

  // Each round submits one multi-hop query (consumer 0, class 1 — always
  // forwarded 0 -> 1 -> 2 and re-homed) and one local query per other
  // shard, then advances far enough that completions interleave with new
  // arrivals.
  const auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      for (uint32_t s = 0; s < FederationHarness::kShards; ++s) {
        model::Query query;
        query.id = ++next_id;
        query.consumer = static_cast<model::ConsumerId>(s);
        query.query_class = s == 0 ? 1 : 0;
        query.n_results = 3;
        query.cost = 0.4;
        harness.mediator_ptrs[s]->SubmitQuery(query);
      }
      // 0.2s cadence keeps shard 2 (which serves its own class-0 stream
      // PLUS every chain's class-1 stream on 15 providers) under ~65%
      // utilization — an overloaded donor would grow its backlog and
      // pools forever and the steady state could never be allocation-free.
      horizon += 0.2;
      harness.shards->RunUntil(horizon);
    }
    horizon += 700.0;  // drain: results, timeout sweeps, outcome re-homing
    harness.shards->RunUntil(horizon);
  };

  // Burst pre-warm: 200 simultaneous queries per shard push every pool —
  // in-flight slots, route tickets, the outbound outcome slab, the
  // timeout ring, the scheduler's event pool — far past any concurrency
  // the paced steady phase can reach, so later growth can only mean a
  // leak, not a late high-water discovery.
  for (int burst = 0; burst < 200; ++burst) {
    for (uint32_t s = 0; s < FederationHarness::kShards; ++s) {
      model::Query query;
      query.id = ++next_id;
      query.consumer = static_cast<model::ConsumerId>(s);
      query.query_class = s == 0 ? 1 : 0;
      query.n_results = 3;
      query.cost = 0.4;
      harness.mediator_ptrs[s]->SubmitQuery(query);
    }
  }
  horizon += 700.0;
  harness.shards->RunUntil(horizon);

  pump(300);  // warm-up: every pool reaches its high-water mark

  // The chains actually happened: origin counted them delegated, the
  // relay forwarded, the donor borrowed, and every ticket went home.
  const core::MediatorStats& origin = harness.mediator_ptrs[0]->stats();
  EXPECT_GT(origin.queries_delegated, 0);
  EXPECT_GT(harness.mediator_ptrs[1]->stats().queries_forwarded, 0);
  EXPECT_GT(harness.mediator_ptrs[2]->stats().queries_borrowed, 0);
  EXPECT_EQ(harness.mediator_ptrs[0]->route_live_count(), 0u);
  const size_t warm_route_slots =
      harness.mediator_ptrs[0]->route_slot_capacity();

  const uint64_t steady_allocs = util::AllocationCount();
  pump(150);
  const double per_query =
      static_cast<double>(util::AllocationCount() - steady_allocs) /
      (150.0 * FederationHarness::kShards);
  EXPECT_EQ(per_query, 0.0)
      << "forward + re-home chains must stay allocation-free in steady state";

  // Ticket audit: no route slot leaked (live count drains to zero and the
  // pool never grew past its warm-up size).
  EXPECT_EQ(harness.mediator_ptrs[0]->route_live_count(), 0u);
  EXPECT_EQ(harness.mediator_ptrs[0]->route_slot_capacity(),
            warm_route_slots);
  for (core::Mediator* m : harness.mediator_ptrs) {
    EXPECT_EQ(m->inflight_count(), 0u);
  }

  // Chain accounting stayed consistent through the steady phase:
  // delegated == borrowed across the fabric, and the origin's hop
  // histogram shows the two-hop chains.
  int64_t delegated = 0, borrowed = 0, forwarded = 0, finalized = 0;
  int64_t histogram_total = 0;
  for (core::Mediator* m : harness.mediator_ptrs) {
    delegated += m->stats().queries_delegated;
    borrowed += m->stats().queries_borrowed;
    forwarded += m->stats().queries_forwarded;
    finalized += m->stats().queries_finalized;
    for (int64_t bucket : m->stats().borrow_hops) histogram_total += bucket;
  }
  EXPECT_EQ(delegated, borrowed);
  EXPECT_EQ(histogram_total, finalized);
  EXPECT_GT(origin.borrow_hops[2], 0);  // 0 -> 1 -> 2 chains
  EXPECT_EQ(forwarded, origin.borrow_hops[2] + 2 * origin.borrow_hops[3] +
                           3 * origin.borrow_hops[4]);
}

}  // namespace
}  // namespace sbqa::federation
