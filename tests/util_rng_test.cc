// Tests for the deterministic RNG and its distributions.

#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sbqa::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Split();
  // The child stream should neither mirror the parent nor collapse.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(7), b(7);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.Next(), cb.Next());
}

// --- Seed-split parallel streams (one per simulation shard) -----------------

TEST(RngStreamTest, StreamZeroIsTheRootSeed) {
  // Shard 0 of a sharded simulation must carry the exact root stream, so
  // a 1-shard run reproduces the unsharded engine bit for bit.
  EXPECT_EQ(Rng::StreamSeed(42, 0), 42u);
  EXPECT_EQ(Rng::StreamSeed(0xDEADBEEF, 0), 0xDEADBEEFull);
  Rng root(42);
  Rng stream0 = Rng::ForStream(42, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stream0.Next(), root.Next());
}

TEST(RngStreamTest, GoldenStreamSeeds) {
  // Pinned values: the shard -> stream mapping is part of the sharded
  // engine's reproducibility contract. If these move, every committed
  // (seed, shard_count) trace moves with them.
  EXPECT_EQ(Rng::StreamSeed(42, 1), 9129838320742759465ull);
  EXPECT_EQ(Rng::StreamSeed(42, 2), 2139811525164838579ull);
  EXPECT_EQ(Rng::StreamSeed(42, 3), 4875857236239627170ull);
  EXPECT_EQ(Rng::StreamSeed(1234, 1), 16319806597338768250ull);
  EXPECT_EQ(Rng::StreamSeed(0, 1), 6791897765849424158ull);
}

TEST(RngStreamTest, StreamSeedIsStatelessAndStableAcrossShardCounts) {
  // Stream s's seed depends only on (seed, s) — never on how many streams
  // exist or how much any stream consumed. A 4-shard and an 8-shard run
  // therefore agree on the streams they share.
  const uint64_t expected = Rng::StreamSeed(7, 3);
  Rng burn = Rng::ForStream(7, 1);
  for (int i = 0; i < 1000; ++i) burn.Next();
  EXPECT_EQ(Rng::StreamSeed(7, 3), expected);
  for (uint64_t total = 4; total <= 8; ++total) {
    EXPECT_EQ(Rng::StreamSeed(7, 3), expected);
  }
}

TEST(RngStreamTest, AdjacentStreamsDoNotCorrelate) {
  // Adjacent (and near-adjacent) streams of the same root seed must not
  // mirror each other — the classic failure mode of additive seeding,
  // where Rng(seed+1)'s SplitMix64 state words overlap Rng(seed)'s.
  for (uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    for (uint64_t stream = 0; stream < 4; ++stream) {
      Rng a = Rng::ForStream(seed, stream);
      Rng b = Rng::ForStream(seed, stream + 1);
      int equal = 0;
      for (int i = 0; i < 1000; ++i) {
        if (a.Next() == b.Next()) ++equal;
      }
      EXPECT_LT(equal, 5) << "seed " << seed << " stream " << stream;
    }
  }
}

TEST(RngStreamTest, StreamPairwiseCorrelationIsFlat) {
  // Pearson correlation of uniform draws across 8 shard streams: every
  // pair should be statistically indistinguishable from independent.
  constexpr int kStreams = 8;
  constexpr int kDraws = 4000;
  std::vector<std::vector<double>> draws(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    Rng rng = Rng::ForStream(1234, static_cast<uint64_t>(s));
    for (int i = 0; i < kDraws; ++i) draws[s].push_back(rng.NextDouble());
  }
  for (int a = 0; a < kStreams; ++a) {
    for (int b = a + 1; b < kStreams; ++b) {
      double mean_a = 0, mean_b = 0;
      for (int i = 0; i < kDraws; ++i) {
        mean_a += draws[a][i];
        mean_b += draws[b][i];
      }
      mean_a /= kDraws;
      mean_b /= kDraws;
      double cov = 0, var_a = 0, var_b = 0;
      for (int i = 0; i < kDraws; ++i) {
        const double da = draws[a][i] - mean_a;
        const double db = draws[b][i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
      }
      const double corr = cov / std::sqrt(var_a * var_b);
      // 3.5 sigma of the null distribution (sigma ~= 1/sqrt(n)).
      EXPECT_LT(std::abs(corr), 3.5 / std::sqrt(double(kDraws)))
          << "streams " << a << " and " << b;
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-2.5, 7.25);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.25);
  }
}

TEST(RngTest, UniformMeanApproximatesMidpoint) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0, 10);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, UniformIntCoversAllValuesInclusive) {
  Rng rng(8);
  std::set<int64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntUnbiasedOverSmallRange) {
  Rng rng(10);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.UniformInt(0, 3))];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);  // within 10%
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.Exponential(0.1), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(15);
  double sum = 0, sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PoissonSmallLambdaMean) {
  Rng rng(18);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeLambdaMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, ZipfRanksWithinBounds) {
  Rng rng(20);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Zipf(50, 1.1);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
}

TEST(RngTest, ZipfSkewFavorsLowRanks) {
  Rng rng(21);
  int64_t rank1 = 0, rank_high = 0;
  for (int i = 0; i < 50000; ++i) {
    const int64_t v = rng.Zipf(100, 1.2);
    if (v == 1) ++rank1;
    if (v > 50) ++rank_high;
  }
  EXPECT_GT(rank1, rank_high);  // head dominates the whole tail half
}

TEST(RngTest, ZipfZeroSkewIsUniform) {
  Rng rng(22);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(rng.Zipf(10, 0.0) - 1)];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 50);
}

TEST(RngTest, DiscretePicksOnlyPositiveWeights) {
  Rng rng(23);
  const std::vector<double> weights{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 10000; ++i) {
    const size_t idx = rng.Discrete(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, DiscreteProportions) {
  Rng rng(24);
  const std::vector<double> weights{1.0, 3.0};
  int hits = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) hits += rng.Discrete(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(25);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(26);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(27);
  std::vector<int> pool(100);
  for (int i = 0; i < 100; ++i) pool[static_cast<size_t>(i)] = i;
  for (int round = 0; round < 50; ++round) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(pool, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
  }
}

TEST(RngTest, SampleWithoutReplacementOversizedReturnsAll) {
  Rng rng(28);
  const std::vector<int> pool{1, 2, 3};
  const std::vector<int> sample = rng.SampleWithoutReplacement(pool, 10);
  EXPECT_EQ(sample.size(), 3u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<int>{1, 2, 3}));
}

TEST(RngTest, SampleWithoutReplacementIsUnbiased) {
  Rng rng(29);
  std::vector<int> pool{0, 1, 2, 3, 4};
  std::vector<int> counts(5, 0);
  const int rounds = 50000;
  for (int i = 0; i < rounds; ++i) {
    for (int x : rng.SampleWithoutReplacement(pool, 2)) {
      ++counts[static_cast<size_t>(x)];
    }
  }
  // Each element appears with probability 2/5.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / rounds, 0.4, 0.02);
  }
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(31);
  std::vector<size_t> out;
  for (int round = 0; round < 200; ++round) {
    rng.SampleIndices(100, 7, &out);
    EXPECT_EQ(out.size(), 7u);
    std::set<size_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size());
    for (size_t index : out) EXPECT_LT(index, 100u);
  }
}

TEST(RngTest, SampleIndicesEdgeCases) {
  Rng rng(32);
  std::vector<size_t> out{99};  // stale content must be replaced
  rng.SampleIndices(0, 5, &out);
  EXPECT_TRUE(out.empty());
  rng.SampleIndices(5, 0, &out);
  EXPECT_TRUE(out.empty());
  rng.SampleIndices(4, 10, &out);  // k >= n returns a full shuffle
  std::set<size_t> unique(out.begin(), out.end());
  EXPECT_EQ(unique, (std::set<size_t>{0, 1, 2, 3}));
}

TEST(RngTest, SampleIndicesIsUnbiasedSmallK) {
  // Floyd path (k << n): each index appears with probability k/n.
  Rng rng(33);
  std::vector<int> counts(20, 0);
  std::vector<size_t> out;
  const int rounds = 40000;
  for (int i = 0; i < rounds; ++i) {
    rng.SampleIndices(20, 3, &out);
    for (size_t index : out) ++counts[index];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / rounds, 3.0 / 20.0, 0.01);
  }
}

TEST(RngTest, SampleIndicesLargeSparseKStaysDistinctAndUniform) {
  // Exercises the hashed-Floyd branch (k > 64, n >= 16k).
  Rng rng(36);
  const size_t n = 5000, k = 128;
  std::vector<size_t> out;
  std::vector<int> counts(n, 0);
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    rng.SampleIndices(n, k, &out);
    EXPECT_EQ(out.size(), k);
    std::set<size_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t index : out) {
      ASSERT_LT(index, n);
      ++counts[index];
    }
  }
  // Mean appearance rate k/n with loose per-index bounds.
  const double expected = rounds * static_cast<double>(k) / n;  // ~51
  for (int c : counts) EXPECT_NEAR(c, expected, expected);
}

TEST(RngTest, SampleIndicesIsUnbiasedDenseK) {
  // Dense path (k large relative to n): the partial-Fisher-Yates fallback
  // must stay uniform too.
  Rng rng(34);
  const size_t n = 200, k = 100;
  std::vector<int> counts(n, 0);
  std::vector<size_t> out;
  const int rounds = 4000;
  for (int i = 0; i < rounds; ++i) {
    rng.SampleIndices(n, k, &out);
    EXPECT_EQ(out.size(), k);
    for (size_t index : out) ++counts[index];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / rounds, 0.5, 0.05);
  }
}

// Property sweep: all distributions stay in range across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, DistributionsStayInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.NextDouble(), 0.0);
    EXPECT_LT(rng.NextDouble(), 1.0);
    const int64_t u = rng.UniformInt(-5, 5);
    EXPECT_GE(u, -5);
    EXPECT_LE(u, 5);
    EXPECT_GT(rng.Exponential(1.0), 0.0);
    const int64_t z = rng.Zipf(20, 0.8);
    EXPECT_GE(z, 1);
    EXPECT_LE(z, 20);
    EXPECT_GE(rng.Poisson(2.0), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 17, 1234, 99999,
                                           0xDEADBEEF, ~0ull));

}  // namespace
}  // namespace sbqa::util
