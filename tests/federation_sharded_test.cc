// Scenario-level tests of the federation subsystem — the acceptance
// gates of multi-hop borrow chains:
//
//   1. hop_budget = 1 on the full mesh with digest_weight = 0 is
//      behaviorally identical to the legacy one-hop delegation: same
//      allocation traces, bit-identical summaries, same borrow counters
//      (the golden-seed equality requirement);
//   2. multi-hop routing over a ring reproduces bit-for-bit per (seed,
//      shard_count), threaded or serial;
//   3. borrow-chain stats invariants: every chain that starts consumes
//      exactly one terminal borrow, the hops histogram folded into the
//      summary reconciles with the delegated/forwarded counters, and no
//      chain exceeds its budget;
//   4. when every shard is dry for a class, chains terminate (terminal
//      completeness) instead of looping;
//   5. per-shard mediator groups (mediator_count > 1 with shard_count >
//      1) complete every query and reproduce run-over-run.

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "federation/route_state.h"

namespace sbqa::experiments {
namespace {

/// FNV-folded allocation trace, one recorder per shard (same scheme as
/// sharding_determinism_test.cc): colliding hashes mean the runs made
/// the same decisions in the same order.
class TraceRecorder : public core::MediationObserver {
 public:
  void OnMediation(const model::Query& query,
                   const core::AllocationDecision& decision,
                   double now) override {
    Mix(0x11);
    Mix(static_cast<uint64_t>(query.id));
    Mix(std::bit_cast<uint64_t>(now));
    for (model::ProviderId p : decision.selected) {
      Mix(static_cast<uint64_t>(static_cast<uint32_t>(p)));
    }
  }

  void OnQueryCompleted(const core::QueryOutcome& outcome) override {
    Mix(0x22);
    Mix(static_cast<uint64_t>(outcome.query.id));
    Mix(static_cast<uint64_t>(outcome.results_received));
    Mix(std::bit_cast<uint64_t>(outcome.satisfaction));
    Mix(static_cast<uint64_t>(outcome.hops));
  }

  uint64_t hash() const { return hash_; }

 private:
  void Mix(uint64_t v) { hash_ = (hash_ ^ v) * 1099511628211ull; }
  uint64_t hash_ = 14695981039346656037ull;
};

struct ShardTraces {
  std::vector<std::unique_ptr<TraceRecorder>> recorders;

  ScenarioConfig Attach(ScenarioConfig config) {
    recorders.clear();
    for (uint32_t s = 0; s < config.sim.shard_count; ++s) {
      recorders.push_back(std::make_unique<TraceRecorder>());
    }
    config.shard_observer_factory = [this](uint32_t s) {
      return recorders[s].get();
    };
    return config;
  }

  std::vector<uint64_t> hashes() const {
    std::vector<uint64_t> out;
    for (const auto& r : recorders) out.push_back(r->hash());
    return out;
  }
};

/// Starved sharded scenario: shard 1's whole provider block is restricted
/// to class 0, so project 1's queries (class 1) must borrow off-shard —
/// the workload every test here routes through the federation.
ScenarioConfig StarvedConfig(uint64_t seed, uint32_t shards, bool threads) {
  ScenarioConfig config = BaseDemoConfig(seed, /*volunteers=*/120,
                                         /*duration=*/90.0);
  config.sim.shard_count = shards;
  config.sim.shard_use_threads = threads;
  config.population_hook = [shards](core::Registry* registry,
                                    const boinc::BuiltPopulation& population,
                                    util::Rng*) {
    const size_t count = population.volunteers.size();
    const size_t block = (count + shards - 1) / shards;
    for (size_t i = block; i < std::min(count, 2 * block); ++i) {
      registry->provider(population.volunteers[i])
          .RestrictClasses({model::QueryClassId{0}});
    }
  };
  return config;
}

ScenarioConfig WithFederation(ScenarioConfig config,
                              federation::TopologyKind topology,
                              uint32_t hop_budget,
                              double digest_weight = 0.0) {
  config.federation.enabled = true;
  config.federation.topology = topology;
  config.federation.hop_budget = hop_budget;
  config.federation.degree = 4;
  config.federation.digest_weight = digest_weight;
  return config;
}

/// The histogram-vs-counter reconciliation every federated run must
/// satisfy: mean_borrow_hops is hop_weight / finalized where hop_weight =
/// sum_h h * borrow_hops[h], and each chain of h hops contributed one
/// delegated plus h - 1 forwarded — so the counters must recompose it.
void ExpectChainStatsConsistent(const metrics::RunSummary& s) {
  EXPECT_EQ(s.queries_submitted, s.queries_finalized);
  // Every chain that starts (delegated at its origin) ends at exactly one
  // terminal shard that consumed it (borrowed) — mediated or unallocated.
  EXPECT_EQ(s.queries_delegated, s.queries_borrowed);
  const double hop_weight =
      s.mean_borrow_hops * static_cast<double>(s.queries_finalized);
  EXPECT_EQ(std::llround(hop_weight),
            s.queries_delegated + s.queries_forwarded);
  // A chain with >= 2 hops has >= 1 relay, so multi-hop count never
  // exceeds the relay count, and both are bounded by started chains.
  EXPECT_LE(s.queries_multi_hop, s.queries_forwarded);
  EXPECT_LE(s.queries_multi_hop, s.queries_delegated);
}

TEST(FederationShardedTest, HopBudgetOneMeshMatchesLegacyDelegation) {
  // Legacy delegation (federation off) on the starved golden seed...
  ShardTraces legacy_traces;
  const RunResult legacy = RunShardedScenario(
      legacy_traces.Attach(StarvedConfig(/*seed=*/21, /*shards=*/4, true)));
  ASSERT_GT(legacy.summary.queries_delegated, 0);

  // ...and the same scenario through the federation with the degenerate
  // config (full mesh, one hop, pure load scoring).
  ShardTraces fed_traces;
  const RunResult fed = RunShardedScenario(fed_traces.Attach(
      WithFederation(StarvedConfig(/*seed=*/21, /*shards=*/4, true),
                     federation::TopologyKind::kFullMesh,
                     /*hop_budget=*/1)));

  EXPECT_EQ(legacy_traces.hashes(), fed_traces.hashes());
  const metrics::RunSummary& a = legacy.summary;
  const metrics::RunSummary& b = fed.summary;
  EXPECT_EQ(a.queries_submitted, b.queries_submitted);
  EXPECT_EQ(a.queries_finalized, b.queries_finalized);
  EXPECT_EQ(a.queries_delegated, b.queries_delegated);
  EXPECT_EQ(a.queries_borrowed, b.queries_borrowed);
  EXPECT_EQ(a.queries_unallocated, b.queries_unallocated);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(std::bit_cast<uint64_t>(a.consumer_satisfaction),
            std::bit_cast<uint64_t>(b.consumer_satisfaction));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.provider_satisfaction),
            std::bit_cast<uint64_t>(b.provider_satisfaction));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.mean_response_time),
            std::bit_cast<uint64_t>(b.mean_response_time));
  // One-hop chains relay nothing.
  EXPECT_EQ(b.queries_forwarded, 0);
  EXPECT_EQ(b.queries_multi_hop, 0);
  ExpectChainStatsConsistent(b);
}

TEST(FederationShardedTest, MultiHopRingReproducesThreadedAndSerial) {
  auto ring_config = [](bool threads) {
    return WithFederation(StarvedConfig(/*seed=*/7, /*shards=*/4, threads),
                          federation::TopologyKind::kRing,
                          /*hop_budget=*/4);
  };

  ShardTraces first;
  const RunResult a = RunShardedScenario(first.Attach(ring_config(true)));
  ShardTraces second;
  const RunResult b = RunShardedScenario(second.Attach(ring_config(true)));
  EXPECT_EQ(first.hashes(), second.hashes());
  EXPECT_EQ(a.summary.queries_finalized, b.summary.queries_finalized);
  EXPECT_EQ(std::bit_cast<uint64_t>(a.summary.consumer_satisfaction),
            std::bit_cast<uint64_t>(b.summary.consumer_satisfaction));

  ShardTraces serial;
  RunShardedScenario(serial.Attach(ring_config(false)));
  EXPECT_EQ(first.hashes(), serial.hashes());

  // The ring actually multi-hops: shard 1's starved queries reach donors
  // beyond its two neighbors through relays.
  EXPECT_GT(a.summary.queries_delegated, 0);
  ExpectChainStatsConsistent(a.summary);
}

TEST(FederationShardedTest, DigestWeightedRoutingStaysDeterministic) {
  auto weighted_config = [] {
    return WithFederation(StarvedConfig(/*seed=*/13, /*shards=*/4, true),
                          federation::TopologyKind::kRing,
                          /*hop_budget=*/4, /*digest_weight=*/2.0);
  };
  ShardTraces first;
  const RunResult a = RunShardedScenario(first.Attach(weighted_config()));
  ShardTraces second;
  const RunResult b = RunShardedScenario(second.Attach(weighted_config()));
  EXPECT_EQ(first.hashes(), second.hashes());
  EXPECT_EQ(std::bit_cast<uint64_t>(a.summary.consumer_satisfaction),
            std::bit_cast<uint64_t>(b.summary.consumer_satisfaction));
  EXPECT_GT(a.summary.queries_delegated, 0);
  ExpectChainStatsConsistent(a.summary);
}

TEST(FederationShardedTest, ChainStatsSurviveChurnAndStaleDirectories) {
  // Loop-prevention fuzz: churn keeps invalidating the barrier-stale
  // directory, so chains keep landing on shards that went dry after the
  // snapshot and must relay or terminate. The full budget (kMaxHopBudget)
  // maximizes the chance of walking into dead ends; the invariants must
  // hold anyway and the whole thing must reproduce.
  auto churn_config = [] {
    ScenarioConfig config = StarvedConfig(/*seed=*/33, /*shards=*/4, true);
    config.churn.enabled = true;
    config.churn.mean_online = 60;
    config.churn.mean_offline = 30;
    return WithFederation(std::move(config), federation::TopologyKind::kRing,
                          federation::kMaxHopBudget);
  };

  ShardTraces first;
  const RunResult a = RunShardedScenario(first.Attach(churn_config()));
  ExpectChainStatsConsistent(a.summary);
  EXPECT_GT(a.summary.queries_delegated, 0);

  ShardTraces second;
  RunShardedScenario(second.Attach(churn_config()));
  EXPECT_EQ(first.hashes(), second.hashes());
}

TEST(FederationShardedTest, ChainsTerminateWhenEveryShardIsDry) {
  // Restrict EVERY provider to class 0: classes 1 and 2 have no capacity
  // anywhere, so no chain can start (the directory reports no donor) and
  // every starved query must finalize unallocated at home — terminal
  // completeness with zero routing.
  ScenarioConfig config = StarvedConfig(/*seed=*/9, /*shards=*/4, true);
  config.population_hook = [](core::Registry* registry,
                              const boinc::BuiltPopulation& population,
                              util::Rng*) {
    for (model::ProviderId v : population.volunteers) {
      registry->provider(v).RestrictClasses({model::QueryClassId{0}});
    }
  };
  const RunResult result = RunShardedScenario(WithFederation(
      std::move(config), federation::TopologyKind::kRing, /*hop_budget=*/4));

  const metrics::RunSummary& s = result.summary;
  EXPECT_EQ(s.queries_submitted, s.queries_finalized);
  EXPECT_GT(s.queries_unallocated, 0);
  EXPECT_EQ(s.queries_delegated, 0);
  EXPECT_EQ(s.queries_forwarded, 0);
  EXPECT_EQ(s.queries_borrowed, 0);
  ExpectChainStatsConsistent(s);
}

TEST(FederationShardedTest, MediatorGroupsPerShardCompleteAndReproduce) {
  // The un-gated configuration: two mediators per shard on four shards,
  // with the federation routing through each shard's gateway.
  auto group_config = [] {
    ScenarioConfig config = StarvedConfig(/*seed=*/17, /*shards=*/4, true);
    config.mediator_count = 2;
    return WithFederation(std::move(config), federation::TopologyKind::kRing,
                          /*hop_budget=*/4);
  };

  ShardTraces first;
  const RunResult a = RunShardedScenario(first.Attach(group_config()));
  EXPECT_EQ(a.summary.queries_submitted, a.summary.queries_finalized);
  EXPECT_GT(a.summary.queries_delegated, 0);
  ExpectChainStatsConsistent(a.summary);

  ShardTraces second;
  const RunResult b = RunShardedScenario(second.Attach(group_config()));
  EXPECT_EQ(first.hashes(), second.hashes());
  EXPECT_EQ(a.summary.queries_finalized, b.summary.queries_finalized);

  ShardTraces serial;
  auto serial_config = group_config();
  serial_config.sim.shard_use_threads = false;
  RunShardedScenario(serial.Attach(serial_config));
  EXPECT_EQ(first.hashes(), serial.hashes());

  // Groups without federation keep working too (legacy delegation
  // through the gateway).
  ScenarioConfig plain = StarvedConfig(/*seed=*/17, /*shards=*/2, true);
  plain.mediator_count = 3;
  const RunResult c = RunShardedScenario(plain);
  EXPECT_EQ(c.summary.queries_submitted, c.summary.queries_finalized);
}

}  // namespace
}  // namespace sbqa::experiments
