// WallClockRuntime unit tests, driven by the injected fake clock
// (manual_clock mode: the test is the executor and advances time with
// AdvanceTo), plus a threaded smoke test and the counting-allocator gate
// that holds the engine facade's Submit path to ZERO heap allocations per
// query at steady state under the wall-clock runtime — the same contract
// the simulation's event engine is held to.
//
// Lives in its own test binary because it replaces the global operator
// new/delete (via util/counting_alloc.h; counting only, allocation
// behavior is unchanged).

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "runtime/wallclock_runtime.h"
#include "util/counting_alloc.h"

namespace sbqa {
namespace {

using util::AllocationCount;

rt::WallClockOptions ManualOptions() {
  rt::WallClockOptions options;
  options.manual_clock = true;
  return options;
}

TEST(WallClockRuntimeTest, TimersFireInDeadlineOrderUnderFakeClock) {
  rt::WallClockRuntime runtime(ManualOptions());
  std::vector<int> order;
  runtime.Schedule(0.030, [&order] { order.push_back(3); });
  runtime.Schedule(0.010, [&order] { order.push_back(1); });
  runtime.Schedule(0.020, [&order] { order.push_back(2); });
  runtime.Schedule(0.010, [&order] { order.push_back(11); });  // FIFO tie

  runtime.AdvanceTo(0.005);
  EXPECT_TRUE(order.empty());
  runtime.AdvanceTo(0.015);
  EXPECT_EQ(order, (std::vector<int>{1, 11}));
  runtime.AdvanceTo(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2, 3}));
  EXPECT_EQ(runtime.now(), 1.0);
  EXPECT_TRUE(runtime.idle());
}

TEST(WallClockRuntimeTest, CancelIsExactAndStaleHandlesAreHarmless) {
  rt::WallClockRuntime runtime(ManualOptions());
  int fired = 0;
  const rt::TaskId keep = runtime.Schedule(0.01, [&fired] { ++fired; });
  const rt::TaskId kill = runtime.Schedule(0.01, [&fired] { ++fired; });
  EXPECT_TRUE(runtime.Cancel(kill));
  EXPECT_FALSE(runtime.Cancel(kill));  // already cancelled
  runtime.AdvanceTo(0.02);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(runtime.Cancel(keep));  // already fired
  // A recycled slot rejects the old generation.
  const rt::TaskId fresh = runtime.Schedule(0.01, [&fired] { ++fired; });
  EXPECT_NE(fresh, kill);
  EXPECT_FALSE(runtime.Cancel(kill));
  runtime.AdvanceTo(0.04);
  EXPECT_EQ(fired, 2);
}

TEST(WallClockRuntimeTest, FarTimersSurviveWheelRotations) {
  // Deadlines beyond one wheel rotation stay parked in their bucket and
  // fire only when their rotation arrives.
  rt::WallClockOptions options = ManualOptions();
  options.wheel_tick = 0.001;
  options.wheel_slots = 8;  // rotation = 8 ms
  rt::WallClockRuntime runtime(options);
  std::vector<int> order;
  runtime.Schedule(0.050, [&order] { order.push_back(50); });  // 6+ rotations
  runtime.Schedule(0.002, [&order] { order.push_back(2); });   // same bucket
  for (int ms = 1; ms <= 49; ++ms) {
    runtime.AdvanceTo(0.001 * ms);
  }
  EXPECT_EQ(order, (std::vector<int>{2}));
  runtime.AdvanceTo(0.051);
  EXPECT_EQ(order, (std::vector<int>{2, 50}));
}

TEST(WallClockRuntimeTest, ZeroDelayChainsSettleWithinOnePass) {
  rt::WallClockRuntime runtime(ManualOptions());
  int depth = 0;
  std::function<void()> step = [&] {
    if (++depth < 5) runtime.Schedule(0, [&] { step(); });
  };
  runtime.Schedule(0, [&] { step(); });
  runtime.AdvanceTo(0.0);
  EXPECT_EQ(depth, 5);
  EXPECT_TRUE(runtime.idle());
}

TEST(WallClockRuntimeTest, PostedWorkDrainsBeforeTimersOfTheSamePass) {
  rt::WallClockRuntime runtime(ManualOptions());
  std::vector<std::string> order;
  runtime.Schedule(0.005, [&order] { order.push_back("timer"); });
  runtime.Post([&order] { order.push_back("posted"); });
  runtime.AdvanceTo(0.010);
  EXPECT_EQ(order, (std::vector<std::string>{"posted", "timer"}));
}

TEST(WallClockRuntimeTest, ThreadedPostFromManyProducers) {
  // Real service thread: MPSC submissions from several driver threads all
  // execute, on the single executor, without loss.
  rt::WallClockRuntime runtime((rt::WallClockOptions()));
  std::atomic<int> ran{0};
  runtime.Start();
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&runtime, &ran] {
      for (int i = 0; i < kPerProducer; ++i) {
        runtime.Post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (int spin = 0; spin < 2000 && !runtime.idle(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runtime.Stop();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
}

// --- Engine on the wall-clock runtime ---------------------------------------

EngineOptions ManualEngineOptions(uint64_t seed) {
  EngineOptions options;
  options.mode = EngineMode::kWallClock;
  options.wallclock.manual_clock = true;
  // A small wheel (64 ms rotation) so the warm-up phase visits every
  // bucket — the allocation gate measures steady state, not first-touch
  // bucket growth.
  options.wallclock.wheel_slots = 64;
  options.seed = seed;
  options.query_timeout = 5.0;  // sweeps pass often: the ring stays compact
  return options;
}

void BuildDemoPopulation(Engine* engine, model::ConsumerId* consumer) {
  core::ConsumerParams consumer_params;
  consumer_params.n_results = 2;
  consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
  *consumer = engine->AddConsumer(consumer_params);
  for (int i = 0; i < 8; ++i) {
    core::ProviderParams provider_params;
    provider_params.capacity = 1.0 + 0.25 * i;
    const model::ProviderId p = engine->AddProvider(provider_params);
    engine->SetConsumerPreference(*consumer, p, i % 2 == 0 ? 0.8 : -0.5);
    engine->SetProviderPreference(p, *consumer, i < 4 ? 0.7 : -0.2);
  }
}

struct ManualRun {
  int64_t callbacks = 0;
  int64_t served = 0;
  double satisfaction_sum = 0;
  EngineStats stats;
};

ManualRun RunManualEngine(uint64_t seed) {
  Engine engine(ManualEngineOptions(seed));
  model::ConsumerId consumer;
  BuildDemoPopulation(&engine, &consumer);
  engine.Start();
  ManualRun run;
  for (int i = 0; i < 100; ++i) {
    engine.Submit({consumer, 0, 2, 0.1}, [&run](const QueryResult& result) {
      ++run.callbacks;
      if (result.results_received >= result.results_required) ++run.served;
      run.satisfaction_sum += result.satisfaction;
    });
    engine.RunFor(0.05);
  }
  EXPECT_TRUE(engine.WaitIdle(20.0));
  run.stats = engine.Stats();
  return run;
}

TEST(WallClockEngineTest, ManualClockServesQueriesDeterministically) {
  const ManualRun a = RunManualEngine(11);
  const ManualRun b = RunManualEngine(11);
  const ManualRun c = RunManualEngine(12);
  EXPECT_EQ(a.callbacks, 100);
  EXPECT_GE(a.served, 90);  // SbQA may allocate < q.n when intentions dip
  EXPECT_GT(a.satisfaction_sum, 0);
  EXPECT_EQ(a.stats.queries_finalized, 100);
  EXPECT_EQ(a.stats.queries_in_flight, 0);
  EXPECT_GT(a.stats.mean_response_time, 0);
  // Same seed, same advance script => bit-equal run.
  EXPECT_EQ(a.satisfaction_sum, b.satisfaction_sum);
  EXPECT_EQ(a.stats.mean_response_time, b.stats.mean_response_time);
  EXPECT_EQ(a.stats.mean_satisfaction, b.stats.mean_satisfaction);
  // A different seed also replays cleanly (RNG-dependent draws like
  // KnBest sampling may or may not land elsewhere on 8 providers, so only
  // liveness is asserted).
  EXPECT_EQ(c.callbacks, 100);
}

TEST(WallClockEngineTest, ThreadedEngineServesDriverThreadTraffic) {
  EngineOptions options;
  options.mode = EngineMode::kWallClock;
  options.seed = 3;
  options.query_timeout = 5.0;
  options.wallclock.wheel_tick = 0.0005;
  Engine engine(std::move(options));
  model::ConsumerId consumer;
  BuildDemoPopulation(&engine, &consumer);
  engine.Start();
  std::atomic<int64_t> callbacks{0};
  constexpr int kQueries = 400;
  std::thread driver([&engine, &callbacks, consumer] {
    for (int i = 0; i < kQueries; ++i) {
      engine.Submit({consumer, 0, 2, 0.001},
                    [&callbacks](const QueryResult&) {
                      callbacks.fetch_add(1, std::memory_order_relaxed);
                    });
      if (i % 50 == 49) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  driver.join();
  EXPECT_TRUE(engine.WaitIdle(10.0));
  EXPECT_EQ(callbacks.load(), kQueries);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_finalized, kQueries);
  EXPECT_EQ(stats.queries_in_flight, 0);
  engine.Stop();
}

TEST(WallClockEngineTest, SteadyStateSubmitPathIsAllocationFree) {
  // The acceptance gate: the full submit -> mediate -> dispatch -> process
  // -> outcome-callback path on the wall-clock runtime performs ZERO heap
  // allocations per query once the pools (tickets, timer wheel, in-flight
  // slots, submit queue) are warm. Manual clock so the measurement is
  // single-threaded and exact.
  Engine engine(ManualEngineOptions(42));
  model::ConsumerId consumer;
  BuildDemoPopulation(&engine, &consumer);
  engine.Start();
  int64_t callbacks = 0;
  auto pump = [&engine, &callbacks, consumer](int queries) {
    for (int i = 0; i < queries; ++i) {
      engine.Submit({consumer, 0, 2, 0.1},
                    [&callbacks](const QueryResult&) { ++callbacks; });
      engine.RunFor(0.05);
    }
    (void)engine.WaitIdle(20.0);  // drain, including timeout-ring sweeps
  };

  pump(300);  // warm-up: every pool reaches its high-water mark

  const uint64_t before = AllocationCount();
  pump(200);
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "wall-clock Submit path must not allocate at steady state";
  EXPECT_EQ(callbacks, 500);
}

}  // namespace
}  // namespace sbqa
