// Tests for the domain model: preferences, reputation, intention policies
// and the geometric balance operator.

#include <memory>

#include <gtest/gtest.h>

#include "model/intention.h"
#include "model/preference.h"
#include "model/query.h"
#include "model/reputation.h"
#include "util/balance.h"

namespace sbqa::model {
namespace {

// --- Balance operator -------------------------------------------------------

TEST(BalanceTest, WeightOneReturnsFirst) {
  EXPECT_NEAR(util::WeightedGeometricBlend(0.4, -0.9, 1.0), 0.4, 1e-12);
}

TEST(BalanceTest, WeightZeroReturnsSecond) {
  EXPECT_NEAR(util::WeightedGeometricBlend(0.4, -0.9, 0.0), -0.9, 1e-12);
}

TEST(BalanceTest, EqualInputsAreFixedPoints) {
  for (double v : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      EXPECT_NEAR(util::WeightedGeometricBlend(v, v, w), v, 1e-9);
    }
  }
}

TEST(BalanceTest, NegativeOneIsAbsorbingWithPositiveWeight) {
  EXPECT_NEAR(util::WeightedGeometricBlend(-1.0, 1.0, 0.5), -1.0, 1e-12);
  EXPECT_NEAR(util::WeightedGeometricBlend(1.0, -1.0, 0.5), -1.0, 1e-12);
}

TEST(BalanceTest, OutputAlwaysInRange) {
  for (double x = -1; x <= 1.0001; x += 0.25) {
    for (double y = -1; y <= 1.0001; y += 0.25) {
      for (double w = 0; w <= 1.0001; w += 0.25) {
        const double b = util::WeightedGeometricBlend(x, y, w);
        EXPECT_GE(b, -1.0);
        EXPECT_LE(b, 1.0);
      }
    }
  }
}

TEST(BalanceTest, MonotoneInBothArguments) {
  const double w = 0.6;
  double prev = -2;
  for (double x = -1; x <= 1.0001; x += 0.1) {
    const double b = util::WeightedGeometricBlend(x, 0.3, w);
    EXPECT_GE(b, prev - 1e-12);
    prev = b;
  }
  prev = -2;
  for (double y = -1; y <= 1.0001; y += 0.1) {
    const double b = util::WeightedGeometricBlend(0.3, y, w);
    EXPECT_GE(b, prev - 1e-12);
    prev = b;
  }
}

TEST(BalanceTest, NormalizeDenormalizeRoundTrip) {
  for (double v = -1; v <= 1.0001; v += 0.125) {
    EXPECT_NEAR(util::DenormalizeSigned(util::NormalizeSigned(v)), v, 1e-12);
  }
}

// --- PreferenceProfile ------------------------------------------------------

TEST(PreferenceTest, DefaultValueForUnknownTargets) {
  PreferenceProfile p(0.1);
  EXPECT_DOUBLE_EQ(p.Get(42), 0.1);
  EXPECT_FALSE(p.Has(42));
}

TEST(PreferenceTest, SetAndGet) {
  PreferenceProfile p;
  p.Set(1, 0.8);
  p.Set(2, -0.6);
  EXPECT_DOUBLE_EQ(p.Get(1), 0.8);
  EXPECT_DOUBLE_EQ(p.Get(2), -0.6);
  EXPECT_TRUE(p.Has(1));
  EXPECT_EQ(p.explicit_count(), 2u);
}

TEST(PreferenceTest, ClampsToValidRange) {
  PreferenceProfile p;
  p.Set(1, 5.0);
  p.Set(2, -5.0);
  EXPECT_DOUBLE_EQ(p.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(p.Get(2), -1.0);
  PreferenceProfile q(9.0);
  EXPECT_DOUBLE_EQ(q.default_value(), 1.0);
}

TEST(PreferenceTest, OverwriteKeepsLatest) {
  PreferenceProfile p;
  p.Set(1, 0.5);
  p.Set(1, -0.5);
  EXPECT_DOUBLE_EQ(p.Get(1), -0.5);
  EXPECT_EQ(p.explicit_count(), 1u);
}

TEST(PreferenceTest, MeanExplicit) {
  PreferenceProfile p(0.3);
  EXPECT_DOUBLE_EQ(p.MeanExplicit(), 0.3);  // empty -> default
  p.Set(1, 1.0);
  p.Set(2, 0.0);
  EXPECT_DOUBLE_EQ(p.MeanExplicit(), 0.5);
}

TEST(PreferenceTest, OutOfOrderInsertionStaysConsistent) {
  // The flat-vector representation appends for ascending ids (the build
  // path) but must also handle arbitrary insertion order (scripted
  // scenario hooks).
  PreferenceProfile p(-0.25);
  p.Set(50, 0.5);
  p.Set(10, 0.1);
  p.Set(30, 0.3);
  p.Set(10, -0.1);  // overwrite the middle of the sorted run
  EXPECT_EQ(p.explicit_count(), 3u);
  EXPECT_DOUBLE_EQ(p.Get(10), -0.1);
  EXPECT_DOUBLE_EQ(p.Get(30), 0.3);
  EXPECT_DOUBLE_EQ(p.Get(50), 0.5);
  EXPECT_DOUBLE_EQ(p.Get(20), -0.25);  // gaps fall back to the default
  EXPECT_DOUBLE_EQ(p.Get(0), -0.25);
  EXPECT_DOUBLE_EQ(p.Get(60), -0.25);
}

TEST(PreferenceTest, LargeProfileUsesBinarySearchPath) {
  // Above the linear-scan cutoff the profile switches to binary search;
  // exercise both boundaries of the sorted array and an interior miss.
  PreferenceProfile p(0.0);
  for (int32_t id = 0; id < 200; ++id) {
    p.Set(id * 2, (id % 2 == 0) ? 0.25 : -0.25);  // even targets only
  }
  EXPECT_EQ(p.explicit_count(), 200u);
  EXPECT_DOUBLE_EQ(p.Get(0), 0.25);
  EXPECT_DOUBLE_EQ(p.Get(398), -0.25);
  EXPECT_DOUBLE_EQ(p.Get(101), 0.0);  // odd target: absent
  EXPECT_DOUBLE_EQ(p.Get(-3), 0.0);
  EXPECT_DOUBLE_EQ(p.Get(400), 0.0);
  EXPECT_TRUE(p.Has(398));
  EXPECT_FALSE(p.Has(399));
}

// --- ReputationRegistry -----------------------------------------------------

TEST(ReputationTest, StartsAtPrior) {
  ReputationRegistry rep(3, 0.1, 0.5);
  EXPECT_DOUBLE_EQ(rep.Get(0), 0.5);
  EXPECT_DOUBLE_EQ(rep.Get(2), 0.5);
  EXPECT_EQ(rep.Observations(0), 0);
}

TEST(ReputationTest, SuccessRaisesFailureLowers) {
  ReputationRegistry rep(2, 0.2, 0.5);
  rep.Record(0, 1.0);
  EXPECT_GT(rep.Get(0), 0.5);
  rep.Record(1, 0.0);
  EXPECT_LT(rep.Get(1), 0.5);
}

TEST(ReputationTest, ConvergesToSteadyOutcome) {
  ReputationRegistry rep(1, 0.1, 0.5);
  for (int i = 0; i < 200; ++i) rep.Record(0, 1.0);
  EXPECT_NEAR(rep.Get(0), 1.0, 0.01);
  for (int i = 0; i < 400; ++i) rep.Record(0, 0.0);
  EXPECT_NEAR(rep.Get(0), 0.0, 0.01);
}

TEST(ReputationTest, ObservationCountTracks) {
  ReputationRegistry rep(1);
  rep.Record(0, 1.0);
  rep.Record(0, 0.5);
  EXPECT_EQ(rep.Observations(0), 2);
}

TEST(ReputationDeathTest, OutOfRangeProviderAborts) {
  ReputationRegistry rep(2);
  EXPECT_DEATH(rep.Get(5), "CHECK failed");
  EXPECT_DEATH(rep.Record(-1, 1.0), "CHECK failed");
}

// --- Intention policies -----------------------------------------------------

Query MakeQuery() {
  Query q;
  q.id = 1;
  q.consumer = 0;
  q.n_results = 2;
  q.cost = 3;
  return q;
}

TEST(ConsumerPolicyTest, PreferenceOnlyEchoesPreference) {
  PreferenceConsumerPolicy policy;
  ConsumerIntentionContext ctx;
  const Query q = MakeQuery();
  ctx.query = &q;
  ctx.preference = 0.65;
  EXPECT_DOUBLE_EQ(policy.Compute(ctx), 0.65);
}

TEST(ConsumerPolicyTest, ReputationTradingBlends) {
  ReputationTradingConsumerPolicy policy(0.5);
  ConsumerIntentionContext ctx;
  const Query q = MakeQuery();
  ctx.query = &q;
  ctx.preference = 0.5;
  ctx.reputation = 1.0;  // maps to +1 signed
  const double blended = policy.Compute(ctx);
  EXPECT_GT(blended, 0.5);  // perfect reputation pulls intention up
  ctx.reputation = 0.0;  // maps to -1 signed (absorbing)
  EXPECT_NEAR(policy.Compute(ctx), -1.0, 1e-12);
}

TEST(ConsumerPolicyTest, ReputationTradingPhiOneIgnoresReputation) {
  ReputationTradingConsumerPolicy policy(1.0);
  ConsumerIntentionContext ctx;
  const Query q = MakeQuery();
  ctx.query = &q;
  ctx.preference = 0.3;
  ctx.reputation = 0.0;
  EXPECT_NEAR(policy.Compute(ctx), 0.3, 1e-12);
}

TEST(ConsumerPolicyTest, ResponseTimePolicyRanksFasterHigher) {
  ResponseTimeConsumerPolicy policy;
  ConsumerIntentionContext fast, slow;
  const Query q = MakeQuery();
  fast.query = slow.query = &q;
  fast.expected_completion = 1.0;
  fast.max_expected_completion = 10.0;
  slow.expected_completion = 10.0;
  slow.max_expected_completion = 10.0;
  EXPECT_GT(policy.Compute(fast), policy.Compute(slow));
  EXPECT_NEAR(policy.Compute(slow), -1.0, 1e-12);  // slowest candidate
}

TEST(ConsumerPolicyTest, ResponseTimePolicyBounds) {
  ResponseTimeConsumerPolicy policy;
  ConsumerIntentionContext ctx;
  const Query q = MakeQuery();
  ctx.query = &q;
  ctx.expected_completion = 0;
  ctx.max_expected_completion = 5;
  EXPECT_DOUBLE_EQ(policy.Compute(ctx), 1.0);
  ctx.max_expected_completion = 0;  // degenerate normalizer
  EXPECT_LE(policy.Compute(ctx), 1.0);
  EXPECT_GE(policy.Compute(ctx), -1.0);
}

TEST(ProviderPolicyTest, PreferenceOnlyEchoesPreference) {
  PreferenceProviderPolicy policy;
  ProviderIntentionContext ctx;
  const Query q = MakeQuery();
  ctx.query = &q;
  ctx.preference = -0.4;
  EXPECT_DOUBLE_EQ(policy.Compute(ctx), -0.4);
}

TEST(ProviderPolicyTest, UtilizationTradingDecaysWithLoad) {
  UtilizationTradingProviderPolicy policy(0.5);
  ProviderIntentionContext idle, busy;
  const Query q = MakeQuery();
  idle.query = busy.query = &q;
  idle.preference = busy.preference = 0.6;
  idle.utilization = 0.0;
  busy.utilization = 0.9;
  EXPECT_GT(policy.Compute(idle), policy.Compute(busy));
}

TEST(ProviderPolicyTest, UtilizationTradingPsiOneIgnoresLoad) {
  UtilizationTradingProviderPolicy policy(1.0);
  ProviderIntentionContext ctx;
  const Query q = MakeQuery();
  ctx.query = &q;
  ctx.preference = 0.25;
  ctx.utilization = 0.99;
  EXPECT_NEAR(policy.Compute(ctx), 0.25, 1e-12);
}

TEST(ProviderPolicyTest, LoadOnlyLinearInUtilization) {
  LoadOnlyProviderPolicy policy;
  ProviderIntentionContext ctx;
  const Query q = MakeQuery();
  ctx.query = &q;
  ctx.utilization = 0.0;
  EXPECT_DOUBLE_EQ(policy.Compute(ctx), 1.0);
  ctx.utilization = 0.5;
  EXPECT_DOUBLE_EQ(policy.Compute(ctx), 0.0);
  ctx.utilization = 1.0;
  EXPECT_DOUBLE_EQ(policy.Compute(ctx), -1.0);
}

TEST(PolicyFactoryTest, BuildsEveryKind) {
  EXPECT_EQ(MakeConsumerPolicy(ConsumerPolicyKind::kPreferenceOnly)->name(),
            "consumer/preference");
  EXPECT_EQ(MakeConsumerPolicy(ConsumerPolicyKind::kReputationTrading)->name(),
            "consumer/reputation-trading");
  EXPECT_EQ(MakeConsumerPolicy(ConsumerPolicyKind::kResponseTimeOnly)->name(),
            "consumer/response-time");
  EXPECT_EQ(MakeProviderPolicy(ProviderPolicyKind::kPreferenceOnly)->name(),
            "provider/preference");
  EXPECT_EQ(
      MakeProviderPolicy(ProviderPolicyKind::kUtilizationTrading)->name(),
      "provider/utilization-trading");
  EXPECT_EQ(MakeProviderPolicy(ProviderPolicyKind::kLoadOnly)->name(),
            "provider/load-only");
}

TEST(PolicyFactoryTest, ToStringNames) {
  EXPECT_STREQ(ToString(ConsumerPolicyKind::kResponseTimeOnly),
               "response-time-only");
  EXPECT_STREQ(ToString(ProviderPolicyKind::kLoadOnly), "load-only");
}

// Property sweep: every policy output stays within [-1, 1].
class PolicyRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(PolicyRangeSweep, OutputsStayInSignedUnitRange) {
  const double knob = GetParam();
  ReputationTradingConsumerPolicy consumer(knob);
  UtilizationTradingProviderPolicy provider(knob);
  const Query q = MakeQuery();
  for (double pref = -1; pref <= 1.0001; pref += 0.2) {
    for (double aux = 0; aux <= 1.0001; aux += 0.2) {
      ConsumerIntentionContext cc;
      cc.query = &q;
      cc.preference = pref;
      cc.reputation = aux;
      const double ci = consumer.Compute(cc);
      EXPECT_GE(ci, -1.0);
      EXPECT_LE(ci, 1.0);

      ProviderIntentionContext pc;
      pc.query = &q;
      pc.preference = pref;
      pc.utilization = aux;
      const double pi = provider.Compute(pc);
      EXPECT_GE(pi, -1.0);
      EXPECT_LE(pi, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, PolicyRangeSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace sbqa::model
