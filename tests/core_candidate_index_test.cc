// Tests for the incrementally maintained candidate index: lifecycle events
// (churn offline/online, departure, class restriction, runtime join) must
// keep the index exactly consistent with a brute-force registry scan, and
// uniform sampling must be uniform, distinct and eligible-only.

#include "core/candidate_index.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "model/query.h"
#include "util/rng.h"

namespace sbqa::core {
namespace {

model::Query QueryOfClass(model::QueryClassId cls) {
  model::Query q;
  q.query_class = cls;
  return q;
}

/// Brute-force Pq, the ground truth the index must match.
std::vector<model::ProviderId> BruteForcePq(const Registry& registry,
                                            model::QueryClassId cls) {
  std::vector<model::ProviderId> out;
  for (const Provider& p : registry.providers()) {
    if (p.alive() && p.CanTreat(cls)) out.push_back(p.id());
  }
  return out;
}

void ExpectIndexMatchesBruteForce(const Registry& registry,
                                  model::QueryClassId cls) {
  const std::vector<model::ProviderId> expected = BruteForcePq(registry, cls);
  const std::vector<model::ProviderId> got =
      registry.ProvidersFor(QueryOfClass(cls));
  EXPECT_EQ(got, expected);  // ProvidersFor sorts; brute force is ascending
  EXPECT_EQ(registry.candidate_index().CountFor(cls), expected.size());
  for (const Provider& p : registry.providers()) {
    EXPECT_EQ(registry.candidate_index().ContainsFor(cls, p.id()),
              p.alive() && p.CanTreat(cls))
        << "provider " << p.id() << " class " << cls;
  }
}

model::ProviderId AddProvider(Registry* registry, double capacity = 1.0) {
  ProviderParams params;
  params.capacity = capacity;
  return registry->AddProvider(params);
}

TEST(CandidateIndexTest, TracksAdditionsAndClassRestrictions) {
  Registry r;
  AddProvider(&r);                       // generalist
  AddProvider(&r);                       // restricted to {1}
  AddProvider(&r);                       // restricted to {1, 2}
  r.provider(1).RestrictClasses({1});
  r.provider(2).RestrictClasses({1, 2});

  EXPECT_EQ(r.ProvidersFor(QueryOfClass(0)),
            (std::vector<model::ProviderId>{0}));
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(1)),
            (std::vector<model::ProviderId>{0, 1, 2}));
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(2)),
            (std::vector<model::ProviderId>{0, 2}));
  for (model::QueryClassId cls = 0; cls < 3; ++cls) {
    ExpectIndexMatchesBruteForce(r, cls);
  }
}

TEST(CandidateIndexTest, ChurnOfflineOnlineUpdatesMembership) {
  Registry r;
  for (int i = 0; i < 4; ++i) AddProvider(&r);
  r.provider(1).set_alive(false);
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(0)),
            (std::vector<model::ProviderId>{0, 2, 3}));
  EXPECT_EQ(r.alive_provider_count(), 3u);

  r.provider(1).set_alive(true);
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(0)),
            (std::vector<model::ProviderId>{0, 1, 2, 3}));
  EXPECT_EQ(r.alive_provider_count(), 4u);

  // Redundant toggles are no-ops (the notification is change-gated).
  r.provider(1).set_alive(true);
  EXPECT_EQ(r.alive_provider_count(), 4u);
  ExpectIndexMatchesBruteForce(r, 0);
}

TEST(CandidateIndexTest, DepartureRemovesPermanently) {
  Registry r;
  for (int i = 0; i < 3; ++i) AddProvider(&r);
  r.provider(0).MarkDeparted();
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(0)),
            (std::vector<model::ProviderId>{1, 2}));
  EXPECT_FALSE(r.candidate_index().ContainsFor(0, 0));
  ExpectIndexMatchesBruteForce(r, 0);
}

TEST(CandidateIndexTest, RestrictingAliveProviderMovesBuckets) {
  Registry r;
  for (int i = 0; i < 3; ++i) AddProvider(&r);
  // Post-registration restriction (the runtime-join path restricts after
  // AddProvider returns).
  r.provider(0).RestrictClasses({2});
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(0)),
            (std::vector<model::ProviderId>{1, 2}));
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(2)),
            (std::vector<model::ProviderId>{0, 1, 2}));
  // Widening back to all classes.
  r.provider(0).RestrictClasses({});
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(0)),
            (std::vector<model::ProviderId>{0, 1, 2}));
  for (model::QueryClassId cls = 0; cls < 3; ++cls) {
    ExpectIndexMatchesBruteForce(r, cls);
  }
}

TEST(CandidateIndexTest, RestrictionOnOfflineProviderAppliesOnReturn) {
  Registry r;
  for (int i = 0; i < 2; ++i) AddProvider(&r);
  r.provider(0).set_alive(false);
  r.provider(0).RestrictClasses({7});
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(7)),
            (std::vector<model::ProviderId>{1}));
  r.provider(0).set_alive(true);
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(7)),
            (std::vector<model::ProviderId>{0, 1}));
  EXPECT_EQ(r.ProvidersFor(QueryOfClass(0)),
            (std::vector<model::ProviderId>{1}));
  ExpectIndexMatchesBruteForce(r, 7);
}

TEST(CandidateIndexTest, CountersAreMaintainedIncrementally) {
  Registry r;
  AddProvider(&r, 1.0);
  AddProvider(&r, 3.0);
  AddProvider(&r, 0.5);
  EXPECT_EQ(r.alive_provider_count(), 3u);
  EXPECT_DOUBLE_EQ(r.AliveCapacity(), 4.5);
  EXPECT_DOUBLE_EQ(r.TotalCapacity(), 4.5);

  r.provider(1).set_alive(false);
  EXPECT_EQ(r.alive_provider_count(), 2u);
  EXPECT_DOUBLE_EQ(r.AliveCapacity(), 1.5);
  EXPECT_DOUBLE_EQ(r.TotalCapacity(), 4.5);

  r.provider(1).set_alive(true);
  r.provider(0).MarkDeparted();
  EXPECT_EQ(r.alive_provider_count(), 2u);
  EXPECT_DOUBLE_EQ(r.AliveCapacity(), 3.5);
}

TEST(CandidateIndexTest, ActiveConsumerCountTracksSetActive) {
  Registry r;
  r.AddConsumer({});
  r.AddConsumer({});
  r.AddConsumer({});
  EXPECT_EQ(r.active_consumer_count(), 3u);
  r.consumer(1).set_active(false);
  r.consumer(1).set_active(false);  // redundant, change-gated
  EXPECT_EQ(r.active_consumer_count(), 2u);
  r.consumer(1).set_active(true);
  EXPECT_EQ(r.active_consumer_count(), 3u);
}

TEST(CandidateIndexTest, CollectAliveMatchesBruteForce) {
  Registry r;
  for (int i = 0; i < 10; ++i) AddProvider(&r);
  r.provider(2).set_alive(false);
  r.provider(7).MarkDeparted();
  std::vector<model::ProviderId> alive;
  r.CollectAliveProviders(&alive);
  std::sort(alive.begin(), alive.end());
  std::vector<model::ProviderId> expected;
  for (const Provider& p : r.providers()) {
    if (p.alive()) expected.push_back(p.id());
  }
  EXPECT_EQ(alive, expected);
}

TEST(CandidateIndexTest, SampleReturnsDistinctEligibleProviders) {
  Registry r;
  for (int i = 0; i < 50; ++i) AddProvider(&r);
  for (int i = 0; i < 50; i += 3) r.provider(i).RestrictClasses({1});
  r.provider(4).set_alive(false);
  util::Rng rng(11);

  std::vector<model::ProviderId> sample;
  for (int round = 0; round < 200; ++round) {
    r.candidate_index().SampleFor(0, 8, rng, &sample);
    EXPECT_EQ(sample.size(), 8u);
    std::set<model::ProviderId> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), sample.size());
    for (model::ProviderId p : sample) {
      EXPECT_TRUE(r.provider(p).alive());
      EXPECT_TRUE(r.provider(p).CanTreat(0));
    }
  }
}

TEST(CandidateIndexTest, SampleIsUniformAcrossBuckets) {
  // 10 generalists + 10 class-1 specialists: class-1 samples must cover
  // both buckets uniformly (the virtual-concatenation sampler must not
  // favor either array).
  Registry r;
  for (int i = 0; i < 20; ++i) AddProvider(&r);
  for (int i = 10; i < 20; ++i) r.provider(i).RestrictClasses({1});
  util::Rng rng(12);

  std::map<model::ProviderId, int> counts;
  const int rounds = 6000;
  std::vector<model::ProviderId> sample;
  for (int round = 0; round < rounds; ++round) {
    r.candidate_index().SampleFor(1, 2, rng, &sample);
    for (model::ProviderId p : sample) ++counts[p];
  }
  EXPECT_EQ(counts.size(), 20u);
  const double expected = rounds * 2.0 / 20.0;  // 600
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count, expected, expected * 0.25) << "provider " << id;
  }
}

TEST(CandidateIndexTest, SampleCoveringWholeSetReturnsEveryone) {
  Registry r;
  for (int i = 0; i < 6; ++i) AddProvider(&r);
  util::Rng rng(13);
  std::vector<model::ProviderId> sample;
  r.candidate_index().SampleFor(0, 100, rng, &sample);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<model::ProviderId>{0, 1, 2, 3, 4, 5}));
}

TEST(CandidateIndexTest, FuzzedLifecycleStaysConsistent) {
  // Random joins, churn toggles, departures and re-restrictions; after
  // every mutation the index must agree with the brute-force scan for
  // every class.
  Registry r;
  util::Rng rng(99);
  const std::vector<model::QueryClassId> classes = {0, 1, 2};
  for (int i = 0; i < 30; ++i) AddProvider(&r, rng.Uniform(0.5, 2.0));

  for (int step = 0; step < 500; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.05) {
      AddProvider(&r, rng.Uniform(0.5, 2.0));  // runtime join
    } else {
      const auto id = static_cast<model::ProviderId>(
          rng.UniformInt(0, static_cast<int64_t>(r.provider_count()) - 1));
      Provider& p = r.provider(id);
      if (action < 0.45) {
        p.set_alive(!p.alive() && !p.departed());
      } else if (action < 0.55 && !p.departed()) {
        p.MarkDeparted();
      } else if (action < 0.8) {
        std::unordered_set<model::QueryClassId> restrict;
        for (model::QueryClassId cls : classes) {
          if (rng.Bernoulli(0.4)) restrict.insert(cls);
        }
        p.RestrictClasses(std::move(restrict));
      } else {
        p.set_alive(false);
      }
    }
    for (model::QueryClassId cls : classes) {
      ASSERT_EQ(r.ProvidersFor(QueryOfClass(cls)), BruteForcePq(r, cls))
          << "step " << step << " class " << cls;
      ASSERT_EQ(r.candidate_index().CountFor(cls),
                BruteForcePq(r, cls).size());
    }
    size_t alive = 0;
    double capacity = 0;
    for (const Provider& p : r.providers()) {
      if (p.alive()) {
        ++alive;
        capacity += p.capacity();
      }
    }
    ASSERT_EQ(r.alive_provider_count(), alive);
    ASSERT_NEAR(r.AliveCapacity(), capacity, 1e-9);
  }
}

// --- CandidateSet -----------------------------------------------------------

TEST(CandidateSetTest, IndexBackedViewSizesAndMaterializes) {
  Registry r;
  for (int i = 0; i < 5; ++i) AddProvider(&r);
  r.provider(3).set_alive(false);
  std::vector<model::ProviderId> scratch;
  const CandidateSet set = r.CandidatesFor(QueryOfClass(0), &scratch);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_FALSE(set.empty());
  // All() yields arbitrary (index) order; compare as sorted copies, and
  // check it is idempotent.
  std::vector<model::ProviderId> all = set.All();
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<model::ProviderId>{0, 1, 2, 4}));
  EXPECT_EQ(set.All(), set.All());
}

TEST(CandidateSetTest, ExplicitListViewPassesThrough) {
  const std::vector<model::ProviderId> list = {3, 1, 4};
  const CandidateSet set(&list);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(&set.All(), &list);

  util::Rng rng(5);
  std::vector<model::ProviderId> sample;
  set.SampleUniform(2, rng, &sample);
  EXPECT_EQ(sample.size(), 2u);
  for (model::ProviderId p : sample) {
    EXPECT_TRUE(std::find(list.begin(), list.end(), p) != list.end());
  }
}

TEST(CandidateSetTest, EmptyIndexViewIsEmpty) {
  Registry r;
  AddProvider(&r);
  r.provider(0).RestrictClasses({5});
  std::vector<model::ProviderId> scratch;
  const CandidateSet set = r.CandidatesFor(QueryOfClass(9), &scratch);
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.All().empty());
}

}  // namespace
}  // namespace sbqa::core
