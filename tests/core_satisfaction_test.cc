// Tests for the satisfaction model: Equation 1, Definitions 1-2 and the
// reconstructed adequation / allocation-satisfaction notions.

#include "core/satisfaction.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sbqa::core {
namespace {

// --- NormalizeIntention ------------------------------------------------------

TEST(NormalizeIntentionTest, MapsSignedToUnit) {
  EXPECT_DOUBLE_EQ(NormalizeIntention(-1), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeIntention(0), 0.5);
  EXPECT_DOUBLE_EQ(NormalizeIntention(1), 1.0);
  EXPECT_DOUBLE_EQ(NormalizeIntention(0.5), 0.75);
}

TEST(NormalizeIntentionTest, ClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(NormalizeIntention(-3), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeIntention(3), 1.0);
}

// --- Equation 1 --------------------------------------------------------------

TEST(Equation1Test, FullAllocationAveragesNormalizedIntentions) {
  // Two performers with CI = 1 and CI = 0 for n = 2:
  // ((1+1)/2 + (0+1)/2) / 2 = 0.75.
  EXPECT_DOUBLE_EQ(ConsumerQuerySatisfaction({1.0, 0.0}, 2), 0.75);
}

TEST(Equation1Test, PerfectAllocationGivesOne) {
  EXPECT_DOUBLE_EQ(ConsumerQuerySatisfaction({1.0, 1.0, 1.0}, 3), 1.0);
}

TEST(Equation1Test, NoPerformersGivesZero) {
  EXPECT_DOUBLE_EQ(ConsumerQuerySatisfaction({}, 3), 0.0);
}

TEST(Equation1Test, PartialAllocationPenalizedByDividingByN) {
  // One performer with CI = 1 but n = 2 required: 1/2.
  EXPECT_DOUBLE_EQ(ConsumerQuerySatisfaction({1.0}, 2), 0.5);
}

TEST(Equation1Test, HostileProvidersContributeNothing) {
  // CI = -1 normalizes to 0.
  EXPECT_DOUBLE_EQ(ConsumerQuerySatisfaction({-1.0, -1.0}, 2), 0.0);
}

TEST(Equation1Test, OverAllocationStaysInUnitInterval) {
  // More performers than required: averaged over the performer count.
  const double v = ConsumerQuerySatisfaction({1.0, 1.0, 1.0, 1.0}, 2);
  EXPECT_LE(v, 1.0);
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Equation1Test, AlwaysInUnitInterval) {
  util::Rng rng(7);
  for (int round = 0; round < 1000; ++round) {
    std::vector<double> intentions;
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 4));
    const int performers = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < performers; ++i) {
      intentions.push_back(rng.Uniform(-1, 1));
    }
    const double v = ConsumerQuerySatisfaction(intentions, n);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

// --- Adequation & allocation satisfaction ------------------------------------

TEST(AdequationTest, MeanOfNormalizedIntentions) {
  EXPECT_DOUBLE_EQ(ConsumerQueryAdequation({1.0, -1.0}), 0.5);
  EXPECT_DOUBLE_EQ(ConsumerQueryAdequation({}), 0.0);
}

TEST(AllocationSatisfactionTest, OptimalAllocationIsOne) {
  // Candidates {1.0, 0.0}, n = 1; best achievable = 1.0. Obtained 1.0.
  EXPECT_DOUBLE_EQ(
      ConsumerQueryAllocationSatisfaction(1.0, {1.0, 0.0}, 1), 1.0);
}

TEST(AllocationSatisfactionTest, SuboptimalAllocationBelowOne) {
  // Obtained 0.5 (the worse candidate) vs best 1.0.
  EXPECT_DOUBLE_EQ(
      ConsumerQueryAllocationSatisfaction(0.5, {1.0, 0.0}, 1), 0.5);
}

TEST(AllocationSatisfactionTest, NothingAchievableIsVacuouslyOne) {
  EXPECT_DOUBLE_EQ(
      ConsumerQueryAllocationSatisfaction(0.0, {-1.0, -1.0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(ConsumerQueryAllocationSatisfaction(0.0, {}, 1), 1.0);
}

TEST(AllocationSatisfactionTest, ClampedToUnitInterval) {
  EXPECT_LE(ConsumerQueryAllocationSatisfaction(5.0, {0.2}, 1), 1.0);
}

// --- ConsumerSatisfactionTracker (Definition 1) -------------------------------

TEST(ConsumerTrackerTest, EmptyDefaults) {
  ConsumerSatisfactionTracker t(5);
  EXPECT_EQ(t.sample_count(), 0u);
  EXPECT_FALSE(t.window_full());
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.0);
  EXPECT_DOUBLE_EQ(t.satisfaction(0.5), 0.5);
  EXPECT_DOUBLE_EQ(t.allocation_satisfaction(), 1.0);
}

TEST(ConsumerTrackerTest, AveragesOverWindow) {
  ConsumerSatisfactionTracker t(3);
  t.RecordQuery(1.0, 0.8, 1.0);
  t.RecordQuery(0.0, 0.4, 0.5);
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.5);
  EXPECT_DOUBLE_EQ(t.adequation(), 0.6);
  EXPECT_DOUBLE_EQ(t.allocation_satisfaction(), 0.75);
}

TEST(ConsumerTrackerTest, OnlyKLastQueriesCount) {
  ConsumerSatisfactionTracker t(2);
  t.RecordQuery(0.0, 0, 0);
  t.RecordQuery(1.0, 0, 0);
  t.RecordQuery(1.0, 0, 0);  // evicts the 0.0
  EXPECT_DOUBLE_EQ(t.satisfaction(), 1.0);
  EXPECT_TRUE(t.window_full());
}

// --- ProviderSatisfactionTracker (Definition 2) --------------------------------

TEST(ProviderTrackerTest, EmptyIsZeroPerDefinition2) {
  ProviderSatisfactionTracker t(5);
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.0);
  EXPECT_DOUBLE_EQ(t.adequation(), 0.0);
  EXPECT_DOUBLE_EQ(t.allocation_satisfaction(), 1.0);
}

TEST(ProviderTrackerTest, NoPerformedQueriesIsZero) {
  ProviderSatisfactionTracker t(5);
  t.RecordProposal(1.0, false);
  t.RecordProposal(0.8, false);
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.0);  // SQ empty
  EXPECT_GT(t.adequation(), 0.0);           // but proposals existed
}

TEST(ProviderTrackerTest, PerformedOnlyDenominator) {
  ProviderSatisfactionTracker t(10);
  t.RecordProposal(1.0, true);    // norm 1.0, performed
  t.RecordProposal(-1.0, false);  // norm 0.0, not performed
  t.RecordProposal(0.0, true);    // norm 0.5, performed
  // Mean over performed = (1.0 + 0.5)/2.
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.75);
}

TEST(ProviderTrackerTest, AllProposedDenominatorPenalizesLosses) {
  ProviderSatisfactionTracker t(10,
                                ProviderSatisfactionDenominator::kAllProposed);
  t.RecordProposal(1.0, true);
  t.RecordProposal(1.0, false);
  // Sum over performed = 1.0, over window size 2 -> 0.5.
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.5);
}

TEST(ProviderTrackerTest, EvictionUpdatesRunningSums) {
  ProviderSatisfactionTracker t(2);
  t.RecordProposal(1.0, true);
  t.RecordProposal(0.0, true);
  t.RecordProposal(-1.0, true);  // evicts the 1.0
  // Window = {norm 0.5 performed, norm 0.0 performed}.
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.25);
  EXPECT_EQ(t.performed_count(), 2u);
  EXPECT_DOUBLE_EQ(t.adequation(), 0.25);
}

TEST(ProviderTrackerTest, EvictionOfPerformedEntryUpdatesCount) {
  ProviderSatisfactionTracker t(2);
  t.RecordProposal(1.0, true);
  t.RecordProposal(1.0, false);
  t.RecordProposal(1.0, false);  // evicts the performed one
  EXPECT_EQ(t.performed_count(), 0u);
  EXPECT_DOUBLE_EQ(t.satisfaction(), 0.0);
}

TEST(ProviderTrackerTest, AdequationCountsAllProposals) {
  ProviderSatisfactionTracker t(4);
  t.RecordProposal(1.0, false);
  t.RecordProposal(-1.0, false);
  EXPECT_DOUBLE_EQ(t.adequation(), 0.5);
}

TEST(ProviderTrackerTest, AllocationSatisfactionOptimalWhenPerformingBest) {
  ProviderSatisfactionTracker t(4);
  t.RecordProposal(1.0, true);    // performed the best proposal
  t.RecordProposal(-1.0, false);  // skipped the worst
  EXPECT_DOUBLE_EQ(t.allocation_satisfaction(), 1.0);
}

TEST(ProviderTrackerTest, AllocationSatisfactionLowWhenPerformingWorst) {
  ProviderSatisfactionTracker t(4);
  t.RecordProposal(1.0, false);  // missed the good one
  t.RecordProposal(0.0, true);   // performed the mediocre one
  // Obtained 0.5, best achievable with one performed = 1.0.
  EXPECT_DOUBLE_EQ(t.allocation_satisfaction(), 0.5);
}

TEST(ProviderTrackerTest, CountersExposed) {
  ProviderSatisfactionTracker t(8);
  t.RecordProposal(0.5, true);
  t.RecordProposal(0.5, false);
  EXPECT_EQ(t.proposal_count(), 2u);
  EXPECT_EQ(t.performed_count(), 1u);
  EXPECT_FALSE(t.window_full());
  EXPECT_EQ(t.capacity(), 8u);
}

// Property: the O(1) running aggregates always match a brute-force pass, and
// satisfaction stays in [0, 1].
class ProviderTrackerSweep : public ::testing::TestWithParam<
                                 std::tuple<size_t, int>> {};

TEST_P(ProviderTrackerSweep, RunningSumsMatchBruteForce) {
  const size_t k = std::get<0>(GetParam());
  const int mode_int = std::get<1>(GetParam());
  const auto mode = static_cast<ProviderSatisfactionDenominator>(mode_int);
  ProviderSatisfactionTracker tracker(k, mode);
  util::Rng rng(k * 131 + static_cast<uint64_t>(mode_int));

  std::vector<std::pair<double, bool>> history;
  for (int i = 0; i < 400; ++i) {
    const double intention = rng.Uniform(-1, 1);
    const bool performed = rng.Bernoulli(0.4);
    tracker.RecordProposal(intention, performed);
    history.emplace_back(intention, performed);

    // Brute force over the k last proposals.
    const size_t begin = history.size() > k ? history.size() - k : 0;
    double sum_performed = 0;
    size_t n_performed = 0;
    for (size_t j = begin; j < history.size(); ++j) {
      if (history[j].second) {
        sum_performed += NormalizeIntention(history[j].first);
        ++n_performed;
      }
    }
    double expected = 0;
    if (n_performed > 0) {
      const size_t window_size = history.size() - begin;
      expected = mode == ProviderSatisfactionDenominator::kPerformedOnly
                     ? sum_performed / static_cast<double>(n_performed)
                     : sum_performed / static_cast<double>(window_size);
    }
    ASSERT_NEAR(tracker.satisfaction(), expected, 1e-9);
    ASSERT_GE(tracker.satisfaction(), 0.0);
    ASSERT_LE(tracker.satisfaction(), 1.0);
    ASSERT_GE(tracker.allocation_satisfaction(), 0.0);
    ASSERT_LE(tracker.allocation_satisfaction(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndModes, ProviderTrackerSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 5, 50),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace sbqa::core
