// Cross-shard determinism tests — the acceptance gate of the sharded
// engine:
//
//   1. shard_count = 1 through the sharded machinery is bit-identical to
//      the classic single-engine path (same allocation trace, same
//      counters) on a demo-scenario golden seed;
//   2. a fixed (seed, shard_count) reproduces identical allocation traces
//      run after run, with worker threads on;
//   3. threaded and serial execution produce identical traces;
//   4. the cross-shard borrow path activates when a shard's candidate
//      pool for a class runs dry, stays deterministic, and completes the
//      starved consumer's queries on a peer shard's providers.
//
// Traces are FNV-folded per shard from the mediation observer stream:
// every allocation decision (query id, selected providers) and every
// outcome (query id, results, satisfaction bits). Two runs whose traces
// collide per-shard executed the same allocations in the same order.

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"

namespace sbqa::experiments {
namespace {

class TraceRecorder : public core::MediationObserver {
 public:
  void OnMediation(const model::Query& query,
                   const core::AllocationDecision& decision,
                   double now) override {
    Mix(0x11);
    Mix(static_cast<uint64_t>(query.id));
    Mix(std::bit_cast<uint64_t>(now));
    for (model::ProviderId p : decision.selected) {
      Mix(static_cast<uint64_t>(static_cast<uint32_t>(p)));
    }
    ++mediations_;
  }

  void OnQueryCompleted(const core::QueryOutcome& outcome) override {
    Mix(0x22);
    Mix(static_cast<uint64_t>(outcome.query.id));
    Mix(static_cast<uint64_t>(outcome.results_received));
    Mix(std::bit_cast<uint64_t>(outcome.satisfaction));
    Mix(std::bit_cast<uint64_t>(outcome.response_time));
    ++outcomes_;
  }

  void OnProviderDeparted(model::ProviderId provider, double now) override {
    Mix(0x33);
    Mix(static_cast<uint64_t>(static_cast<uint32_t>(provider)));
    Mix(std::bit_cast<uint64_t>(now));
  }

  uint64_t hash() const { return hash_; }
  int64_t mediations() const { return mediations_; }
  int64_t outcomes() const { return outcomes_; }

 private:
  void Mix(uint64_t v) { hash_ = (hash_ ^ v) * 1099511628211ull; }

  uint64_t hash_ = 14695981039346656037ull;
  int64_t mediations_ = 0;
  int64_t outcomes_ = 0;
};

/// Recorders for one run: one per shard, owned here, handed to the runner
/// through the per-shard observer factory.
struct ShardTraces {
  std::vector<std::unique_ptr<TraceRecorder>> recorders;

  ScenarioConfig Attach(ScenarioConfig config) {
    const uint32_t shards = config.sim.shard_count;
    recorders.clear();
    for (uint32_t s = 0; s < shards; ++s) {
      recorders.push_back(std::make_unique<TraceRecorder>());
    }
    config.shard_observer_factory = [this](uint32_t s) {
      return recorders[s].get();
    };
    return config;
  }

  std::vector<uint64_t> hashes() const {
    std::vector<uint64_t> out;
    for (const auto& r : recorders) out.push_back(r->hash());
    return out;
  }
};

ScenarioConfig SmallConfig(uint64_t seed, uint32_t shards, bool threads) {
  ScenarioConfig config = BaseDemoConfig(seed, /*volunteers=*/120,
                                         /*duration=*/90.0);
  config.sim.shard_count = shards;
  config.sim.shard_use_threads = threads;
  return config;
}

TEST(ShardingDeterminismTest, ShardCountOneIsBitIdenticalToClassicEngine) {
  // Classic engine with a shared trace observer.
  TraceRecorder classic;
  ScenarioConfig legacy = SmallConfig(/*seed=*/42, /*shards=*/1, false);
  legacy.observers.push_back(&classic);
  const RunResult legacy_result = RunScenario(legacy);

  // Sharded machinery forced at shard_count = 1.
  ShardTraces traces;
  const ScenarioConfig sharded =
      traces.Attach(SmallConfig(/*seed=*/42, /*shards=*/1, false));
  const RunResult sharded_result = RunShardedScenario(sharded);

  EXPECT_EQ(classic.hash(), traces.recorders[0]->hash());
  EXPECT_EQ(classic.mediations(), traces.recorders[0]->mediations());
  EXPECT_EQ(classic.outcomes(), traces.recorders[0]->outcomes());

  const metrics::RunSummary& a = legacy_result.summary;
  const metrics::RunSummary& b = sharded_result.summary;
  EXPECT_EQ(a.queries_submitted, b.queries_submitted);
  EXPECT_EQ(a.queries_finalized, b.queries_finalized);
  EXPECT_EQ(a.queries_fully_served, b.queries_fully_served);
  EXPECT_EQ(a.queries_timed_out, b.queries_timed_out);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  // Bit-identical accumulation, not just statistical agreement.
  EXPECT_EQ(std::bit_cast<uint64_t>(a.consumer_satisfaction),
            std::bit_cast<uint64_t>(b.consumer_satisfaction));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.provider_satisfaction),
            std::bit_cast<uint64_t>(b.provider_satisfaction));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.mean_response_time),
            std::bit_cast<uint64_t>(b.mean_response_time));
  EXPECT_EQ(b.queries_delegated, 0);
  EXPECT_EQ(b.queries_borrowed, 0);
}

TEST(ShardingDeterminismTest, FixedSeedAndShardCountReproducesThreaded) {
  ShardTraces first_traces;
  const RunResult first = RunShardedScenario(
      first_traces.Attach(SmallConfig(/*seed=*/7, /*shards=*/4, true)));
  ShardTraces second_traces;
  const RunResult second = RunShardedScenario(
      second_traces.Attach(SmallConfig(/*seed=*/7, /*shards=*/4, true)));

  EXPECT_EQ(first_traces.hashes(), second_traces.hashes());
  EXPECT_EQ(first.summary.queries_finalized, second.summary.queries_finalized);
  EXPECT_EQ(std::bit_cast<uint64_t>(first.summary.consumer_satisfaction),
            std::bit_cast<uint64_t>(second.summary.consumer_satisfaction));
  // The run did real work.
  EXPECT_GT(first.summary.queries_finalized, 100);
}

TEST(ShardingDeterminismTest, ThreadedAndSerialTracesMatch) {
  ShardTraces threaded_traces;
  const RunResult threaded = RunShardedScenario(
      threaded_traces.Attach(SmallConfig(/*seed=*/11, /*shards=*/3, true)));
  ShardTraces serial_traces;
  const RunResult serial = RunShardedScenario(
      serial_traces.Attach(SmallConfig(/*seed=*/11, /*shards=*/3, false)));

  EXPECT_EQ(threaded_traces.hashes(), serial_traces.hashes());
  EXPECT_EQ(threaded.summary.queries_finalized,
            serial.summary.queries_finalized);
  EXPECT_EQ(std::bit_cast<uint64_t>(threaded.summary.provider_satisfaction),
            std::bit_cast<uint64_t>(serial.summary.provider_satisfaction));
}

TEST(ShardingDeterminismTest, EveryShardMediatesWork) {
  ShardTraces traces;
  const RunResult result = RunShardedScenario(
      traces.Attach(SmallConfig(/*seed=*/5, /*shards=*/3, true)));
  // Three projects round-robin onto three shards: every shard has a
  // consumer and its own provider block, so every shard mediates.
  for (const auto& recorder : traces.recorders) {
    EXPECT_GT(recorder->mediations(), 0);
  }
  EXPECT_EQ(result.summary.queries_submitted,
            result.summary.queries_finalized);
}

TEST(ShardingDeterminismTest, BorrowPathServesStarvedShardDeterministically) {
  auto starved_config = [](bool threads) {
    ScenarioConfig config = SmallConfig(/*seed=*/21, /*shards=*/4, threads);
    // Starve shard 1: restrict its whole provider block (contiguous ids
    // [block, 2*block)) to class 0. Project 1 (query class 1) lives on
    // shard 1 and must borrow candidates from its peers for every query.
    config.population_hook = [](core::Registry* registry,
                                const boinc::BuiltPopulation& population,
                                util::Rng*) {
      const size_t count = population.volunteers.size();
      const size_t block = (count + 3) / 4;
      for (size_t i = block; i < std::min(count, 2 * block); ++i) {
        registry->provider(population.volunteers[i])
            .RestrictClasses({model::QueryClassId{0}});
      }
    };
    return config;
  };

  ShardTraces traces;
  const RunResult result =
      RunShardedScenario(traces.Attach(starved_config(true)));

  // Shard 1's pool for class 1 is dry -> its queries went over the
  // mailbox and were mediated (borrowed) elsewhere, and still completed.
  EXPECT_GT(result.summary.queries_delegated, 0);
  EXPECT_EQ(result.summary.queries_delegated, result.summary.queries_borrowed);
  EXPECT_EQ(result.summary.queries_submitted,
            result.summary.queries_finalized);
  // The starved project's queries were not simply dropped: unallocated
  // stays a small minority of the delegated stream (a few can still land
  // in churn-empty moments).
  EXPECT_LT(result.summary.queries_unallocated,
            result.summary.queries_delegated / 4 + 1);

  // And the borrow protocol is deterministic, threaded or serial.
  ShardTraces repeat_traces;
  RunShardedScenario(repeat_traces.Attach(starved_config(true)));
  EXPECT_EQ(traces.hashes(), repeat_traces.hashes());
  ShardTraces serial_traces;
  RunShardedScenario(serial_traces.Attach(starved_config(false)));
  EXPECT_EQ(traces.hashes(), serial_traces.hashes());
}

}  // namespace
}  // namespace sbqa::experiments
