// Chaos suite — the acceptance gate of the fault plane and the hardened
// query lifecycle:
//
//   1. FaultInjector semantics: a disabled plan is a draw-free
//      pass-through, exempt destinations are never faulted, and every
//      fault pattern (drops, delays, crash windows, latency skew) is a
//      pure function of FaultPlan::seed;
//   2. mediator recovery: a mid-flight provider loss re-mediates the
//      query onto an untried provider; an exhausted retry budget ends in
//      a terminal outcome with nothing leaked; a late result from an
//      abandoned attempt never double-finalizes; the health detector
//      suspends a consecutively failing provider and probes it back;
//   3. chaos end-to-end: a scenario under ~10% provider crash downtime
//      plus 5% dropped sends completes EVERY query terminally and is
//      bit-reproducible per (seed, shard_count), threaded or serial;
//   4. graceful degradation: the engine sheds deterministically at
//      max_pending (and at the wall-clock submit queue bound);
//   5. allocation gates: the retry ladder and the shed path perform zero
//      heap allocations per query at steady state.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/sbqa.h"
#include "engine/engine.h"
#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "model/reputation.h"
#include "runtime/fault.h"
#include "sim/simulation.h"
#include "util/counting_alloc.h"

namespace sbqa {
namespace {

// --- FaultInjector units -----------------------------------------------------

/// A bare simulation whose runtime the injector wraps; destination sends
/// record which messages got through.
struct InjectorHarness {
  explicit InjectorHarness(const rt::FaultPlan& plan, uint64_t sim_seed = 1) {
    sim::SimulationConfig config;
    config.seed = sim_seed;
    config.latency_sigma = 0;  // constant latency: FIFO delivery
    simulation = std::make_unique<sim::Simulation>(config);
    injector =
        std::make_unique<rt::FaultInjector>(&simulation->runtime(), plan);
    control = injector->RegisterDestination();  // 0: exempt
    data = injector->RegisterDestination();     // 1: faultable
  }

  /// Sends `count` numbered messages to `destination` and returns the
  /// delivery mask after draining.
  std::vector<bool> SendBatch(rt::Destination destination, int count) {
    std::vector<bool> delivered(static_cast<size_t>(count), false);
    for (int i = 0; i < count; ++i) {
      injector->SendTo(destination,
                       [&delivered, i] { delivered[static_cast<size_t>(i)] =
                                             true; });
    }
    simulation->RunUntil(simulation->now() + 120.0);
    return delivered;
  }

  std::unique_ptr<sim::Simulation> simulation;
  std::unique_ptr<rt::FaultInjector> injector;
  rt::Destination control = rt::kNoDestination;
  rt::Destination data = rt::kNoDestination;
};

TEST(FaultInjectorTest, DisabledPlanIsPassThrough) {
  rt::FaultPlan plan;  // all defaults: no faults
  ASSERT_FALSE(plan.enabled());
  InjectorHarness h(plan);
  const std::vector<bool> delivered = h.SendBatch(h.data, 50);
  EXPECT_EQ(std::count(delivered.begin(), delivered.end(), true), 50);
  // A disabled injector never even counts: the faultable branch is off.
  EXPECT_EQ(h.injector->stats().sends_seen, 0);
  EXPECT_EQ(h.injector->stats().sends_dropped, 0);
}

TEST(FaultInjectorTest, ExemptDestinationsAreNeverFaulted) {
  rt::FaultPlan plan;
  plan.drop_send_prob = 1.0;  // drop everything faultable
  InjectorHarness h(plan);
  const std::vector<bool> control = h.SendBatch(h.control, 30);
  const std::vector<bool> data = h.SendBatch(h.data, 30);
  // The control plane (mediator inbox) is lossless; the data plane lost
  // every send.
  EXPECT_EQ(std::count(control.begin(), control.end(), true), 30);
  EXPECT_EQ(std::count(data.begin(), data.end(), true), 0);
  EXPECT_EQ(h.injector->stats().sends_seen, 30);
  EXPECT_EQ(h.injector->stats().sends_dropped, 30);
}

TEST(FaultInjectorTest, DropPatternIsSeededAndReproducible) {
  rt::FaultPlan plan;
  plan.seed = 7;
  plan.drop_send_prob = 0.5;
  const std::vector<bool> first = InjectorHarness(plan).SendBatch(1, 200);
  const std::vector<bool> second = InjectorHarness(plan).SendBatch(1, 200);
  EXPECT_EQ(first, second);  // same plan seed: identical pattern
  const int survivors =
      static_cast<int>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(survivors, 0);
  EXPECT_LT(survivors, 200);

  plan.seed = 8;
  const std::vector<bool> other = InjectorHarness(plan).SendBatch(1, 200);
  EXPECT_NE(first, other);  // the pattern is a function of the seed
}

TEST(FaultInjectorTest, CrashWindowsAreDeterministicPerDestination) {
  rt::FaultPlan plan;
  plan.seed = 11;
  plan.crash_rate = 0.5;          // mean 2s up
  plan.mean_crash_duration = 2.0;  // mean 2s down
  auto sample = [&plan](rt::Destination d) {
    InjectorHarness h(plan);
    std::vector<bool> down;
    for (double t = 0; t < 100.0; t += 0.25) {
      down.push_back(h.injector->DestinationDown(d, t));
    }
    return down;
  };
  const std::vector<bool> first = sample(1);
  EXPECT_EQ(first, sample(1));  // pure function of (seed, destination, t)
  EXPECT_NE(first, sample(2));  // independent stream per destination
  // The process alternates: both phases appear over 100s of 50/50 windows.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultInjectorTest, CrashedDestinationDiscardsSends) {
  rt::FaultPlan plan;
  plan.seed = 3;
  plan.crash_rate = 1.0;           // mean 1s up
  plan.mean_crash_duration = 1.0;  // mean 1s down
  InjectorHarness h(plan);
  // Spread sends over 60s so both up and down windows are hit.
  int delivered = 0;
  for (int i = 0; i < 120; ++i) {
    h.injector->Schedule(0.5 * i, [&h, &delivered] {
      h.injector->SendTo(h.data, [&delivered] { ++delivered; });
    });
  }
  h.simulation->RunUntil(120.0);
  const rt::FaultStats& stats = h.injector->stats();
  EXPECT_EQ(stats.sends_seen, 120);
  EXPECT_GT(stats.sends_crashed, 0);
  EXPECT_GT(stats.crash_windows, 0);
  EXPECT_EQ(delivered, 120 - static_cast<int>(stats.sends_crashed));
}

TEST(FaultInjectorTest, DelayedSendsAreCountedAndEventuallyDelivered) {
  rt::FaultPlan plan;
  plan.delay_send_prob = 1.0;
  plan.delay_mean = 0.05;
  InjectorHarness h(plan);
  const std::vector<bool> delivered = h.SendBatch(h.data, 50);
  // Delay is a fault, not a loss: everything still arrives.
  EXPECT_EQ(std::count(delivered.begin(), delivered.end(), true), 50);
  EXPECT_EQ(h.injector->stats().sends_delayed, 50);
  EXPECT_EQ(h.injector->stats().sends_dropped, 0);
}

TEST(FaultInjectorTest, LatencySkewMultipliesInnerSamples) {
  rt::FaultPlan skewed_plan;
  skewed_plan.latency_skew = 0.5;
  rt::FaultPlan plain_plan;  // disabled
  // Same simulation seed: the inner latency streams are identical draws.
  InjectorHarness skewed(skewed_plan, /*sim_seed=*/5);
  InjectorHarness plain(plain_plan, /*sim_seed=*/5);
  for (int i = 0; i < 100; ++i) {
    const double raw = plain.injector->SampleLatency();
    EXPECT_DOUBLE_EQ(skewed.injector->SampleLatency(), raw * 1.5);
  }
  EXPECT_EQ(skewed.injector->stats().latency_skews, 100);
  EXPECT_EQ(plain.injector->stats().latency_skews, 0);
}

// --- Mediator recovery -------------------------------------------------------

/// Observer recording outcomes and per-attempt allocation decisions.
struct ChaosObserver : core::MediationObserver {
  void OnMediation(const model::Query&,
                   const core::AllocationDecision& decision, double) override {
    selections.push_back(decision.selected);
  }
  void OnQueryCompleted(const core::QueryOutcome& outcome) override {
    outcomes.push_back(outcome);
  }
  std::vector<std::vector<model::ProviderId>> selections;
  std::vector<core::QueryOutcome> outcomes;
};

/// TestSystem with the fault plane interposed: preference-only policies,
/// capacity-1 providers, n_results=1 consumer, the mediator built over a
/// FaultInjector wrapping the simulation runtime.
struct ChaosSystem {
  explicit ChaosSystem(int providers, const rt::FaultPlan& plan = {},
                       uint64_t seed = 1) {
    sim::SimulationConfig sim_config;
    sim_config.seed = seed;
    sim_config.latency_median = 0.001;
    sim_config.latency_sigma = 0;  // constant latency for exact arithmetic
    simulation = std::make_unique<sim::Simulation>(sim_config);
    injector =
        std::make_unique<rt::FaultInjector>(&simulation->runtime(), plan);

    core::ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    consumer_params.n_results = 1;
    consumer = registry.AddConsumer(consumer_params);
    for (int i = 0; i < providers; ++i) {
      core::ProviderParams params;
      params.capacity = 1.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      registry.AddProvider(params);
    }
    reputation = std::make_unique<model::ReputationRegistry>(
        registry.provider_count());
  }

  void Start(core::MediatorConfig config, bool observe = true) {
    // Faults ride destination sends: network simulation must be on for the
    // dispatch path to be faultable. Fault-free recovery tests keep it off
    // for exact zero-latency timing.
    config.simulate_network = injector->plan().enabled();
    mediator = std::make_unique<core::Mediator>(
        injector.get(), &registry, reputation.get(),
        std::make_unique<core::SbqaMethod>(core::SbqaParams{}), config);
    if (observe) mediator->AddObserver(&observer);
  }

  model::Query MakeQuery(int n_results = 1, double cost = 2.0) {
    model::Query q;
    q.id = next_query_id++;
    q.consumer = consumer;
    q.n_results = n_results;
    q.cost = cost;
    return q;
  }

  std::unique_ptr<sim::Simulation> simulation;
  std::unique_ptr<rt::FaultInjector> injector;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<core::Mediator> mediator;
  ChaosObserver observer;
  model::ConsumerId consumer = 0;
  model::QueryId next_query_id = 1;
};

TEST(MediatorRecoveryTest, RetryRecoversFromMidFlightProviderLoss) {
  ChaosSystem sys(2);
  sys.registry.consumer(0).preferences().Set(0, 1.0);
  sys.registry.consumer(0).preferences().Set(1, 0.5);
  sys.registry.provider(0).preferences().Set(0, 1.0);
  sys.registry.provider(1).preferences().Set(0, 1.0);
  core::MediatorConfig config;
  config.max_retries = 2;
  config.retry_backoff_jitter = 0;  // exact backoff timing
  sys.Start(config);

  // Cost 2 on capacity 1: provider 0 would finish at t=2. At t=1 it goes
  // offline mid-flight, failing the pending instance with zero results.
  sys.mediator->SubmitQuery(sys.MakeQuery());
  sys.injector->Schedule(1.0, [&sys] {
    sys.mediator->SetProviderAvailability(0, false);
  });
  sys.simulation->RunUntil(20.0);

  ASSERT_EQ(sys.observer.outcomes.size(), 1u);
  const core::QueryOutcome& outcome = sys.observer.outcomes.front();
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.results_received, 1);
  EXPECT_FALSE(outcome.timed_out);
  EXPECT_EQ(core::ClassifyOutcome(outcome), core::OutcomeKind::kRetried);
  // The re-mediation went to the untried provider.
  ASSERT_EQ(sys.observer.selections.size(), 2u);
  EXPECT_EQ(sys.observer.selections[0], std::vector<model::ProviderId>{0});
  EXPECT_EQ(sys.observer.selections[1], std::vector<model::ProviderId>{1});
  ASSERT_EQ(outcome.performers.size(), 1u);
  EXPECT_EQ(outcome.performers[0], 1);
  // Retry completed at flip(1.0) + backoff(0.05) + cost(2.0).
  EXPECT_NEAR(outcome.completed_at, 3.05, 1e-9);

  const core::MediatorStats& stats = sys.mediator->stats();
  EXPECT_EQ(stats.queries_finalized, 1);
  EXPECT_EQ(stats.queries_recovered, 1);
  EXPECT_EQ(stats.queries_satisfied, 0);
  EXPECT_EQ(stats.retry_attempts, 1);
  EXPECT_EQ(stats.instances_failed, 1);
  EXPECT_EQ(sys.mediator->inflight_count(), 0u);
}

TEST(MediatorRecoveryTest, ExhaustedRetryBudgetIsTerminalFailure) {
  rt::FaultPlan plan;
  plan.drop_send_prob = 1.0;  // no dispatch ever arrives
  ChaosSystem sys(1, plan);
  core::MediatorConfig config;
  config.query_timeout = 0.5;
  config.max_retries = 2;
  sys.Start(config);

  sys.mediator->SubmitQuery(sys.MakeQuery());
  sys.simulation->RunUntil(30.0);

  // Attempt 1 was dropped and timed out; attempts 2 and 3 found only the
  // already-tried provider and burned the budget to a terminal failure.
  ASSERT_EQ(sys.observer.outcomes.size(), 1u);
  const core::QueryOutcome& outcome = sys.observer.outcomes.front();
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.results_received, 0);
  EXPECT_FALSE(outcome.unallocated);
  EXPECT_EQ(core::ClassifyOutcome(outcome), core::OutcomeKind::kFailed);

  const core::MediatorStats& stats = sys.mediator->stats();
  EXPECT_EQ(stats.queries_finalized, 1);
  EXPECT_EQ(stats.queries_failed, 1);
  EXPECT_EQ(stats.retry_attempts, 2);
  EXPECT_EQ(stats.instances_abandoned, 1);
  EXPECT_EQ(stats.queries_timed_out, 0);  // retried attempts are not terminal
  EXPECT_EQ(sys.mediator->inflight_count(), 0u);
  EXPECT_EQ(sys.injector->stats().sends_seen, 1);
  EXPECT_EQ(sys.injector->stats().sends_dropped, 1);
}

TEST(MediatorRecoveryTest, LateResultFromAbandonedAttemptNeverDoubleFinalizes) {
  ChaosSystem sys(1);
  // A second, faster provider (capacity 2) for the retry to land on.
  core::ProviderParams fast;
  fast.capacity = 2.0;
  fast.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
  ASSERT_EQ(sys.registry.AddProvider(fast), 1);
  sys.reputation = std::make_unique<model::ReputationRegistry>(
      sys.registry.provider_count());
  sys.registry.consumer(0).preferences().Set(0, 1.0);
  sys.registry.consumer(0).preferences().Set(1, 0.5);
  sys.registry.provider(0).preferences().Set(0, 1.0);
  sys.registry.provider(1).preferences().Set(0, 1.0);
  core::MediatorConfig config;
  config.query_timeout = 1.0;
  config.max_retries = 1;
  config.retry_backoff_jitter = 0;
  sys.Start(config);

  // Cost 1.5 on capacity-1 provider 0: its result lands at t=1.5, but the
  // attempt times out at t=1 and re-mediates onto provider 1 (capacity 2,
  // done at 1.05 + 0.75 = 1.8) — so provider 0's ORIGINAL result arrives
  // at t=1.5 while the retried query is still live in the SAME in-flight
  // slot. It must be dropped, not treated as the retry attempt's result
  // (and never finalize the query twice).
  sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/1, /*cost=*/1.5));
  sys.simulation->RunUntil(30.0);

  ASSERT_EQ(sys.observer.outcomes.size(), 1u);
  const core::QueryOutcome& outcome = sys.observer.outcomes.front();
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.results_received, 1);
  ASSERT_EQ(outcome.performers.size(), 1u);
  EXPECT_EQ(outcome.performers[0], 1);
  EXPECT_EQ(core::ClassifyOutcome(outcome), core::OutcomeKind::kRetried);
  // Retry finished at timeout(1.0) + backoff(0.05) + cost/capacity(0.75).
  EXPECT_NEAR(outcome.completed_at, 1.8, 1e-9);
  // Both providers did the work; only the live attempt's result counted.
  EXPECT_EQ(sys.mediator->stats().instances_completed, 2);
  EXPECT_EQ(sys.mediator->stats().queries_finalized, 1);
  EXPECT_EQ(sys.mediator->inflight_count(), 0u);
}

TEST(MediatorRecoveryTest, HealthDetectorSuspendsAndProbesBack) {
  rt::FaultPlan plan;
  plan.drop_send_prob = 1.0;  // the provider never responds
  ChaosSystem sys(1, plan);
  core::MediatorConfig config;
  config.query_timeout = 1.0;
  config.failure_threshold = 2;
  config.probe_delay = 5.0;
  sys.Start(config);

  // Two unresponsive queries trip the threshold; the third finds the
  // provider suspended; the fourth, after the probe, finds it back.
  sys.mediator->SubmitQuery(sys.MakeQuery());
  sys.mediator->SubmitQuery(sys.MakeQuery());
  sys.injector->Schedule(2.0, [&sys] {
    EXPECT_TRUE(sys.mediator->provider_suspected(0));
    EXPECT_FALSE(sys.registry.provider(0).alive());
    sys.mediator->SubmitQuery(sys.MakeQuery());
  });
  sys.injector->Schedule(8.0, [&sys] {
    EXPECT_FALSE(sys.mediator->provider_suspected(0));
    EXPECT_TRUE(sys.registry.provider(0).alive());
    sys.mediator->SubmitQuery(sys.MakeQuery());
  });
  sys.simulation->RunUntil(30.0);

  ASSERT_EQ(sys.observer.outcomes.size(), 4u);
  const core::MediatorStats& stats = sys.mediator->stats();
  EXPECT_EQ(stats.providers_suspected, 1);
  EXPECT_EQ(stats.providers_probed, 1);
  EXPECT_EQ(stats.queries_unallocated, 1);  // the one during suspension
  EXPECT_EQ(stats.queries_timed_out, 3);
  EXPECT_EQ(stats.queries_finalized, 4);
  EXPECT_EQ(sys.mediator->inflight_count(), 0u);
}

// --- Chaos end-to-end --------------------------------------------------------

/// FNV-folded per-shard allocation/outcome trace (same scheme as the
/// sharding determinism suite).
class TraceRecorder : public core::MediationObserver {
 public:
  void OnMediation(const model::Query& query,
                   const core::AllocationDecision& decision,
                   double now) override {
    Mix(0x11);
    Mix(static_cast<uint64_t>(query.id));
    Mix(std::bit_cast<uint64_t>(now));
    for (model::ProviderId p : decision.selected) {
      Mix(static_cast<uint64_t>(static_cast<uint32_t>(p)));
    }
  }
  void OnQueryCompleted(const core::QueryOutcome& outcome) override {
    Mix(0x22);
    Mix(static_cast<uint64_t>(outcome.query.id));
    Mix(static_cast<uint64_t>(outcome.results_received));
    Mix(static_cast<uint64_t>(outcome.attempts));
    Mix(std::bit_cast<uint64_t>(outcome.satisfaction));
    Mix(std::bit_cast<uint64_t>(outcome.response_time));
  }
  void OnProviderDeparted(model::ProviderId provider, double now) override {
    Mix(0x33);
    Mix(static_cast<uint64_t>(static_cast<uint32_t>(provider)));
    Mix(std::bit_cast<uint64_t>(now));
  }
  uint64_t hash() const { return hash_; }

 private:
  void Mix(uint64_t v) { hash_ = (hash_ ^ v) * 1099511628211ull; }
  uint64_t hash_ = 14695981039346656037ull;
};

struct ShardTraces {
  std::vector<std::unique_ptr<TraceRecorder>> recorders;

  experiments::ScenarioConfig Attach(experiments::ScenarioConfig config) {
    recorders.clear();
    for (uint32_t s = 0; s < config.sim.shard_count; ++s) {
      recorders.push_back(std::make_unique<TraceRecorder>());
    }
    config.shard_observer_factory = [this](uint32_t s) {
      return recorders[s].get();
    };
    return config;
  }

  std::vector<uint64_t> hashes() const {
    std::vector<uint64_t> out;
    for (const auto& r : recorders) out.push_back(r->hash());
    return out;
  }
};

/// The acceptance chaos mix: ~10% provider crash downtime (mean 45s up,
/// 5s down), 5% dropped dispatches, a dash of delay and skew, with the
/// hardened lifecycle on (deadline, retries, health detection).
experiments::ScenarioConfig ChaosConfig(uint64_t seed, uint32_t shards,
                                        bool threads) {
  experiments::ScenarioConfig config = experiments::BaseDemoConfig(
      seed, /*volunteers=*/120, /*duration=*/60.0);
  config.sim.shard_count = shards;
  config.sim.shard_use_threads = threads;
  config.fault_plan.seed = 9;
  config.fault_plan.drop_send_prob = 0.05;
  config.fault_plan.delay_send_prob = 0.05;
  config.fault_plan.delay_mean = 0.1;
  config.fault_plan.latency_skew = 0.25;
  config.fault_plan.crash_rate = 1.0 / 45.0;
  config.fault_plan.mean_crash_duration = 5.0;
  config.query_deadline = 20.0;
  config.mediator.query_timeout = 5.0;
  config.mediator.max_retries = 2;
  config.mediator.failure_threshold = 3;
  config.mediator.probe_delay = 10.0;
  return config;
}

/// Every submitted query reached exactly one terminal outcome, and the
/// taxonomy partitions them.
void ExpectAllTerminal(const metrics::RunSummary& s) {
  EXPECT_GT(s.queries_submitted, 0);
  EXPECT_EQ(s.queries_submitted, s.queries_finalized);
  EXPECT_EQ(s.queries_satisfied + s.queries_recovered + s.queries_timed_out +
                s.queries_failed + s.queries_unallocated,
            s.queries_finalized);
}

TEST(ChaosScenarioTest, ChaosRunCompletesEveryQueryTerminally) {
  const experiments::RunResult result =
      experiments::RunScenario(ChaosConfig(/*seed=*/42, /*shards=*/1, false));
  ExpectAllTerminal(result.summary);
  // The fault plane was really in the path.
  EXPECT_GT(result.summary.fault_sends_dropped, 0);
  EXPECT_GT(result.summary.fault_sends_delayed, 0);
  EXPECT_GT(result.summary.fault_sends_crashed, 0);
}

TEST(ChaosScenarioTest, ChaosTraceIsBitReproduciblePerShardCount) {
  for (uint32_t shards : {1u, 2u, 4u}) {
    ShardTraces first_traces;
    const experiments::RunResult first = experiments::RunShardedScenario(
        first_traces.Attach(ChaosConfig(/*seed=*/7, shards, true)));
    ShardTraces second_traces;
    const experiments::RunResult second = experiments::RunShardedScenario(
        second_traces.Attach(ChaosConfig(/*seed=*/7, shards, true)));

    EXPECT_EQ(first_traces.hashes(), second_traces.hashes())
        << "shards=" << shards;
    EXPECT_EQ(first.summary.queries_finalized,
              second.summary.queries_finalized);
    EXPECT_EQ(std::bit_cast<uint64_t>(first.summary.consumer_satisfaction),
              std::bit_cast<uint64_t>(second.summary.consumer_satisfaction));
    ExpectAllTerminal(first.summary);
    ExpectAllTerminal(second.summary);
  }
}

TEST(ChaosScenarioTest, ChaosThreadedMatchesSerial) {
  ShardTraces threaded_traces;
  const experiments::RunResult threaded = experiments::RunShardedScenario(
      threaded_traces.Attach(ChaosConfig(/*seed=*/11, /*shards=*/3, true)));
  ShardTraces serial_traces;
  const experiments::RunResult serial = experiments::RunShardedScenario(
      serial_traces.Attach(ChaosConfig(/*seed=*/11, /*shards=*/3, false)));

  EXPECT_EQ(threaded_traces.hashes(), serial_traces.hashes());
  EXPECT_EQ(threaded.summary.queries_finalized,
            serial.summary.queries_finalized);
  ExpectAllTerminal(threaded.summary);
}

TEST(ChaosScenarioTest, ShardCountOneChaosMatchesClassicEngine) {
  // StreamSeed(seed, 0) == seed: the single-shard injector replays the
  // exact unsharded fault schedule.
  TraceRecorder classic;
  experiments::ScenarioConfig legacy =
      ChaosConfig(/*seed=*/21, /*shards=*/1, false);
  legacy.observers.push_back(&classic);
  const experiments::RunResult legacy_result =
      experiments::RunScenario(legacy);

  ShardTraces traces;
  const experiments::RunResult sharded_result =
      experiments::RunShardedScenario(
          traces.Attach(ChaosConfig(/*seed=*/21, /*shards=*/1, false)));

  EXPECT_EQ(classic.hash(), traces.recorders[0]->hash());
  EXPECT_EQ(legacy_result.summary.queries_finalized,
            sharded_result.summary.queries_finalized);
  EXPECT_EQ(legacy_result.summary.retry_attempts,
            sharded_result.summary.retry_attempts);
  EXPECT_EQ(legacy_result.summary.fault_sends_dropped,
            sharded_result.summary.fault_sends_dropped);
  EXPECT_EQ(legacy_result.summary.fault_sends_crashed,
            sharded_result.summary.fault_sends_crashed);
}

// --- Engine shedding ---------------------------------------------------------

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.mode = EngineMode::kSimulated;
  options.seed = 4;
  options.simulate_network = false;
  return options;
}

void BuildSmallPopulation(Engine* engine, model::ConsumerId* consumer) {
  ConsumerOptions consumer_options;
  consumer_options.n_results = 1;
  *consumer = engine->AddConsumer(consumer_options);
  ProviderOptions provider_options;
  provider_options.capacity = 1.0;
  const model::ProviderId p = engine->AddProvider(provider_options);
  engine->SetConsumerPreference(*consumer, p, 1.0);
  engine->SetProviderPreference(p, *consumer, 1.0);
}

TEST(EngineSheddingTest, MaxPendingShedsNewestDeterministically) {
  EngineOptions options = SmallEngineOptions();
  options.max_pending = 4;
  Engine engine(std::move(options));
  model::ConsumerId consumer = 0;
  BuildSmallPopulation(&engine, &consumer);
  engine.Start();

  QueryRequest request;
  request.consumer = consumer;
  request.n_results = 1;
  request.cost = 0.5;

  std::vector<QueryResult> results;
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(engine.Submit(
        request, OutcomeCallback([&results](const QueryResult& r) {
          results.push_back(r);
        })));
  }
  // Admission is reject-newest and synchronous: the first four got
  // tickets, the last six were shed before any time passed.
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 4; ++i) EXPECT_NE(tickets[static_cast<size_t>(i)], 0u);
  for (int i = 4; i < 10; ++i) EXPECT_EQ(tickets[static_cast<size_t>(i)], 0u);
  for (const QueryResult& r : results) {
    EXPECT_TRUE(r.shed);
    EXPECT_EQ(r.ticket, 0u);
    EXPECT_EQ(r.outcome, core::OutcomeKind::kShed);
    EXPECT_EQ(r.results_received, 0);
  }

  EXPECT_TRUE(engine.WaitIdle(60.0));
  ASSERT_EQ(results.size(), 10u);
  int satisfied = 0;
  for (const QueryResult& r : results) {
    if (r.outcome == core::OutcomeKind::kSatisfied) ++satisfied;
  }
  EXPECT_EQ(satisfied, 4);

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_shed, 6);
  EXPECT_EQ(stats.queries_submitted, 4);
  EXPECT_EQ(stats.queries_finalized, 4);
  EXPECT_EQ(stats.queries_in_flight, 0);
}

TEST(EngineSheddingTest, WallClockSubmitQueueBoundSheds) {
  EngineOptions options;
  options.mode = EngineMode::kWallClock;
  options.seed = 4;
  options.wallclock.manual_clock = true;  // deterministic: no service thread
  options.wallclock.max_queue = 2;
  Engine engine(std::move(options));
  model::ConsumerId consumer = 0;
  BuildSmallPopulation(&engine, &consumer);
  engine.Start();

  QueryRequest request;
  request.consumer = consumer;
  request.n_results = 1;
  request.cost = 0.001;

  int shed = 0, done = 0;
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(engine.Submit(
        request, OutcomeCallback([&shed, &done](const QueryResult& r) {
          r.shed ? ++shed : ++done;
        })));
  }
  // The bounded submit queue held two; the other three were shed at the
  // door with ticket 0.
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(tickets[2], 0u);
  EXPECT_TRUE(engine.WaitIdle(10.0));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(engine.Stats().queries_shed, 3);
  EXPECT_EQ(engine.Stats().queries_finalized, 2);
}

// --- Allocation gates --------------------------------------------------------

TEST(ChaosAllocationTest, RetryLadderIsAllocationFreeAtSteadyState) {
  rt::FaultPlan plan;
  plan.drop_send_prob = 1.0;  // every query burns the full retry ladder
  ChaosSystem sys(2, plan);
  core::MediatorConfig config;
  config.query_timeout = 0.5;
  config.max_retries = 2;
  sys.Start(config, /*observe=*/false);

  constexpr int kBatch = 25;
  auto run_batch = [&sys] {
    for (int i = 0; i < kBatch; ++i) {
      sys.mediator->SubmitQuery(sys.MakeQuery());
    }
    sys.simulation->RunUntil(sys.simulation->now() + 10.0);
  };
  run_batch();  // warm every pool (slots, ring, tried lists, scheduler)
  const int64_t warm_finalized = sys.mediator->stats().queries_finalized;
  ASSERT_EQ(warm_finalized, kBatch);

  const uint64_t before = util::AllocationCount();
  run_batch();
  EXPECT_EQ(util::AllocationCount() - before, 0u)
      << "retry/timeout path allocated";
  EXPECT_EQ(sys.mediator->stats().queries_finalized, 2 * kBatch);
  EXPECT_EQ(sys.mediator->stats().retry_attempts, 2 * 2 * kBatch);
  EXPECT_EQ(sys.mediator->inflight_count(), 0u);
}

TEST(ChaosAllocationTest, ShedPathIsAllocationFree) {
  EngineOptions options = SmallEngineOptions();
  options.max_pending = 1;
  Engine engine(std::move(options));
  model::ConsumerId consumer = 0;
  BuildSmallPopulation(&engine, &consumer);
  engine.Start();

  QueryRequest request;
  request.consumer = consumer;
  request.n_results = 1;
  request.cost = 0.5;

  int64_t shed = 0;
  auto shed_counter = [&shed](const QueryResult& r) {
    if (r.shed) ++shed;
  };
  // Fill the single admission slot, then warm the shed path.
  EXPECT_NE(engine.Submit(request, OutcomeCallback(shed_counter)), 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(engine.Submit(request, OutcomeCallback(shed_counter)), 0u);
  }

  const uint64_t before = util::AllocationCount();
  for (int i = 0; i < 200; ++i) {
    engine.Submit(request, OutcomeCallback(shed_counter));
  }
  EXPECT_EQ(util::AllocationCount() - before, 0u) << "shed path allocated";
  EXPECT_EQ(shed, 210);
  EXPECT_TRUE(engine.WaitIdle(60.0));
  EXPECT_EQ(engine.Stats().queries_shed, 210);
}

}  // namespace
}  // namespace sbqa
