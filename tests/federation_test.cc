// Tests for the mediator federation: consumer sharding, aggregated
// statistics and cross-mediator failure propagation.

#include <memory>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/sbqa.h"
#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "metrics/collector.h"
#include "model/reputation.h"
#include "sim/simulation.h"

namespace sbqa {
namespace {

/// Two mediators sharing three providers and two consumers.
struct FederationHarness {
  FederationHarness() {
    sim::SimulationConfig config;
    config.seed = 77;
    simulation = std::make_unique<sim::Simulation>(config);
    for (int i = 0; i < 2; ++i) {
      core::ConsumerParams params;
      params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
      registry.AddConsumer(params);
    }
    for (int i = 0; i < 3; ++i) {
      core::ProviderParams params;
      params.capacity = 1.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      registry.AddProvider(params);
    }
    reputation = std::make_unique<model::ReputationRegistry>(3);
    core::MediatorConfig mediator_config;
    mediator_config.simulate_network = false;
    for (int m = 0; m < 2; ++m) {
      mediators.push_back(std::make_unique<core::Mediator>(
          simulation.get(), &registry, reputation.get(),
          std::make_unique<core::SbqaMethod>(core::SbqaParams{}),
          mediator_config));
    }
    mediators[0]->SetPeers({mediators[0].get(), mediators[1].get()});
    mediators[1]->SetPeers({mediators[0].get(), mediators[1].get()});
  }

  model::Query MakeQuery(model::ConsumerId consumer, double cost = 2.0) {
    model::Query q;
    q.id = ++next_id;
    q.consumer = consumer;
    q.n_results = 1;
    q.cost = cost;
    return q;
  }

  std::unique_ptr<sim::Simulation> simulation;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::vector<std::unique_ptr<core::Mediator>> mediators;
  model::QueryId next_id = 0;
};

TEST(FederationTest, MediatorsShareTheProviderPool) {
  FederationHarness h;
  h.mediators[0]->SubmitQuery(h.MakeQuery(0));
  h.mediators[1]->SubmitQuery(h.MakeQuery(1));
  h.simulation->RunUntil(30.0);
  EXPECT_EQ(h.mediators[0]->stats().queries_finalized, 1);
  EXPECT_EQ(h.mediators[1]->stats().queries_finalized, 1);
  int64_t total_performed = 0;
  for (const core::Provider& p : h.registry.providers()) {
    total_performed += p.instances_performed();
  }
  EXPECT_EQ(total_performed, 2);
}

TEST(FederationTest, PeerInstancesFailWhenProviderGoesOffline) {
  FederationHarness h;
  // Only provider 0 stays online so both queries land on it.
  h.mediators[0]->SetProviderAvailability(1, false);
  h.mediators[0]->SetProviderAvailability(2, false);
  h.mediators[0]->SubmitQuery(h.MakeQuery(0, /*cost=*/50.0));
  h.mediators[1]->SubmitQuery(h.MakeQuery(1, /*cost=*/50.0));
  h.simulation->RunUntil(1.0);
  ASSERT_EQ(h.mediators[0]->inflight_count(), 1u);
  ASSERT_EQ(h.mediators[1]->inflight_count(), 1u);

  // Mediator 0 observes the provider going offline; mediator 1's in-flight
  // instance must fail too (peer propagation), finalizing its query.
  h.mediators[0]->SetProviderAvailability(0, false);
  h.simulation->RunUntil(2.0);
  EXPECT_EQ(h.mediators[0]->inflight_count(), 0u);
  EXPECT_EQ(h.mediators[1]->inflight_count(), 0u);
  EXPECT_EQ(h.mediators[1]->stats().instances_failed, 1);
}

TEST(FederationTest, CollectorAggregatesAcrossMediators) {
  FederationHarness h;
  metrics::Collector collector(
      h.simulation.get(), &h.registry,
      std::vector<core::Mediator*>{h.mediators[0].get(),
                                   h.mediators[1].get()},
      5.0);
  collector.Start(40.0);
  for (int i = 0; i < 4; ++i) {
    h.mediators[0]->SubmitQuery(h.MakeQuery(0, 0.5));
    h.mediators[1]->SubmitQuery(h.MakeQuery(1, 0.5));
  }
  h.simulation->RunUntil(40.0);
  const metrics::RunSummary summary = collector.Summarize(40.0);
  EXPECT_EQ(summary.queries_submitted, 8);
  EXPECT_EQ(summary.queries_finalized, 8);
  EXPECT_GT(summary.mean_response_time, 0.0);
}

// --- Full-scenario federation ----------------------------------------------------

TEST(FederationScenarioTest, ShardedRunServesEverything) {
  experiments::ScenarioConfig config = experiments::WithCaptiveEnvironment(
      experiments::BaseDemoConfig(13, /*volunteers=*/60, /*duration=*/180.0));
  config.mediator_count = 3;  // one per project
  const experiments::RunResult result = experiments::RunScenario(config);
  EXPECT_EQ(result.summary.queries_finalized,
            result.summary.queries_submitted);
  EXPECT_GT(result.summary.queries_finalized, 100);
  EXPECT_GT(result.summary.consumer_satisfaction, 0.5);
}

TEST(FederationScenarioTest, FederationCloseToSingleMediator) {
  experiments::ScenarioConfig base = experiments::WithCaptiveEnvironment(
      experiments::BaseDemoConfig(14, /*volunteers=*/80, /*duration=*/240.0));
  experiments::ScenarioConfig sharded = base;
  sharded.mediator_count = 3;
  const experiments::RunResult single = experiments::RunScenario(base);
  const experiments::RunResult federated = experiments::RunScenario(sharded);
  // Sharding the mediation must not distort allocation quality much: the
  // load views split but the satisfaction model and method are identical.
  EXPECT_NEAR(federated.summary.consumer_satisfaction,
              single.summary.consumer_satisfaction, 0.05);
  EXPECT_NEAR(federated.summary.provider_satisfaction,
              single.summary.provider_satisfaction, 0.08);
  EXPECT_LT(federated.summary.mean_response_time,
            single.summary.mean_response_time * 1.5);
}

TEST(FederationScenarioTest, AutonomousFederationStillRetainsVolunteers) {
  experiments::ScenarioConfig config = experiments::WithAutonomousEnvironment(
      experiments::BaseDemoConfig(15, /*volunteers=*/80, /*duration=*/420.0));
  config.departure.grace_period = 120.0;
  config.mediator_count = 2;
  config.method = experiments::MethodSpec::Sbqa(
      experiments::DefaultSbqaParams());
  const experiments::RunResult sbqa = experiments::RunScenario(config);
  config.method = experiments::MethodSpec::Capacity();
  const experiments::RunResult capacity = experiments::RunScenario(config);
  EXPECT_GT(sbqa.summary.provider_retention,
            capacity.summary.provider_retention + 0.1);
}

TEST(FederationScenarioTest, DeterministicAcrossRuns) {
  experiments::ScenarioConfig config = experiments::WithCaptiveEnvironment(
      experiments::BaseDemoConfig(16, /*volunteers=*/40, /*duration=*/120.0));
  config.mediator_count = 4;
  const experiments::RunResult a = experiments::RunScenario(config);
  const experiments::RunResult b = experiments::RunScenario(config);
  EXPECT_EQ(a.summary.queries_finalized, b.summary.queries_finalized);
  EXPECT_DOUBLE_EQ(a.summary.mean_response_time, b.summary.mean_response_time);
  EXPECT_DOUBLE_EQ(a.summary.consumer_satisfaction,
                   b.summary.consumer_satisfaction);
}

}  // namespace
}  // namespace sbqa
