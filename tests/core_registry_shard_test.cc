// Tests for the partitioned registry (per-shard candidate-index views,
// contiguous provider blocks, per-shard consumer counters) and for the
// barrier-refreshed cross-shard candidate directory.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/shard_directory.h"
#include "util/rng.h"

namespace sbqa::core {
namespace {

void Populate(Registry* registry, size_t providers, size_t consumers) {
  for (size_t i = 0; i < providers; ++i) {
    ProviderParams params;
    params.capacity = 1.0 + static_cast<double>(i % 3);
    registry->AddProvider(params);
  }
  for (size_t i = 0; i < consumers; ++i) {
    registry->AddConsumer(ConsumerParams{});
  }
}

model::Query QueryOfClass(model::QueryClassId c) {
  model::Query query;
  query.query_class = c;
  return query;
}

TEST(RegistryShardTest, ContiguousBlocksCoverEveryProviderExactlyOnce) {
  Registry registry;
  Populate(&registry, 10, 3);
  registry.SetShardCount(4);
  // 10 providers over 4 shards: blocks of 3 -> 3, 3, 3, 1.
  std::vector<size_t> per_shard(4, 0);
  uint32_t last_shard = 0;
  for (model::ProviderId p = 0; p < 10; ++p) {
    const uint32_t shard = registry.ProviderShard(p);
    ASSERT_LT(shard, 4u);
    EXPECT_GE(shard, last_shard);  // contiguous, nondecreasing blocks
    last_shard = shard;
    ++per_shard[shard];
  }
  EXPECT_EQ(per_shard, (std::vector<size_t>{3, 3, 3, 1}));

  size_t total_alive = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    total_alive += registry.shard_index(s).alive_count();
  }
  EXPECT_EQ(total_alive, 10u);
  EXPECT_EQ(registry.alive_provider_count(), 10u);
}

TEST(RegistryShardTest, ShardViewsPartitionCandidates) {
  Registry registry;
  Populate(&registry, 12, 2);
  registry.SetShardCount(3);
  std::vector<model::ProviderId> scratch;
  std::vector<model::ProviderId> seen;
  for (uint32_t s = 0; s < 3; ++s) {
    const CandidateSet view =
        registry.CandidatesForShard(s, QueryOfClass(0), &scratch);
    EXPECT_EQ(view.size(), 4u);
    for (model::ProviderId p : view.All()) {
      EXPECT_EQ(registry.ProviderShard(p), s);
      seen.push_back(p);
    }
  }
  std::sort(seen.begin(), seen.end());
  std::vector<model::ProviderId> expected;
  for (model::ProviderId p = 0; p < 12; ++p) expected.push_back(p);
  EXPECT_EQ(seen, expected);  // disjoint union == whole population
}

TEST(RegistryShardTest, EligibilityChangesRouteToOwningPartition) {
  Registry registry;
  Populate(&registry, 8, 1);
  registry.SetShardCount(2);
  registry.provider(6).set_alive(false);  // shard 1 (block size 4)
  EXPECT_EQ(registry.shard_index(0).alive_count(), 4u);
  EXPECT_EQ(registry.shard_index(1).alive_count(), 3u);
  EXPECT_EQ(registry.alive_provider_count(), 7u);
  registry.provider(6).set_alive(true);
  EXPECT_EQ(registry.shard_index(1).alive_count(), 4u);
}

TEST(RegistryShardTest, PerShardSamplingStaysInPartition) {
  Registry registry;
  Populate(&registry, 20, 1);
  registry.SetShardCount(4);
  util::Rng rng(3);
  std::vector<model::ProviderId> scratch;
  std::vector<model::ProviderId> sample;
  for (int draw = 0; draw < 20; ++draw) {
    const CandidateSet view =
        registry.CandidatesForShard(2, QueryOfClass(0), &scratch);
    view.SampleUniform(3, rng, &sample);
    ASSERT_EQ(sample.size(), 3u);
    for (model::ProviderId p : sample) {
      EXPECT_EQ(registry.ProviderShard(p), 2u);
    }
  }
}

TEST(RegistryShardTest, ConsumerCountersArePerShard) {
  Registry registry;
  Populate(&registry, 4, 6);
  registry.SetShardCount(3);
  EXPECT_EQ(registry.active_consumer_count(), 6u);
  EXPECT_EQ(registry.ConsumerShard(0), 0u);
  EXPECT_EQ(registry.ConsumerShard(4), 1u);  // round robin
  registry.consumer(4).set_active(false);
  registry.consumer(2).set_active(false);
  EXPECT_EQ(registry.active_consumer_count(), 4u);
  registry.consumer(4).set_active(true);
  EXPECT_EQ(registry.active_consumer_count(), 5u);
}

TEST(RegistryShardTest, SingleShardKeepsIncrementallyBuiltIndex) {
  Registry registry;
  Populate(&registry, 6, 1);
  const CandidateIndex* before = &registry.candidate_index();
  registry.SetShardCount(1);
  // No rebuild: the exact index object (and therefore its sampling order)
  // survives, which keeps shard_count=1 bit-identical to the classic
  // engine.
  EXPECT_EQ(&registry.candidate_index(), before);
}

TEST(ShardDirectoryTest, CountsFollowPartitions) {
  Registry registry;
  Populate(&registry, 9, 3);
  registry.provider(0).RestrictClasses({model::QueryClassId{2}});
  registry.SetShardCount(3);
  ShardDirectory directory;
  directory.Refresh(registry);

  ASSERT_EQ(directory.shard_count(), 3u);
  // Shard 0: two generalists + one provider restricted to class 2.
  EXPECT_EQ(directory.CountFor(0, 0), 2u);
  EXPECT_EQ(directory.CountFor(0, 2), 3u);
  EXPECT_EQ(directory.CountFor(1, 0), 3u);
  EXPECT_EQ(directory.CountFor(2, 7), 3u);  // unknown class: generalists
}

TEST(ShardDirectoryTest, FindShardWithScansFixedWrapOrder) {
  Registry registry;
  Populate(&registry, 8, 2);
  registry.SetShardCount(4);
  // Starve shards 1 and 2 of class 5: restrict their providers to class 0.
  for (model::ProviderId p = 2; p < 6; ++p) {
    registry.provider(p).RestrictClasses({model::QueryClassId{0}});
  }
  ShardDirectory directory;
  directory.Refresh(registry);

  // From shard 1, the first peer with class-5 candidates (wrap order
  // 2 -> 3) is shard 3.
  EXPECT_EQ(directory.FindShardWith(5, 1), 3u);
  // From shard 3 the next is shard 0.
  EXPECT_EQ(directory.FindShardWith(5, 3), 0u);
  // Class 0 is everywhere; from shard 0 the next shard is 1.
  EXPECT_EQ(directory.FindShardWith(0, 0), 1u);
}

TEST(ShardDirectoryTest, RefreshTracksChurn) {
  Registry registry;
  Populate(&registry, 4, 1);
  registry.SetShardCount(2);
  ShardDirectory directory;
  directory.Refresh(registry);
  EXPECT_EQ(directory.CountFor(1, 0), 2u);

  registry.provider(2).set_alive(false);
  registry.provider(3).set_alive(false);
  // Stale until the next barrier refresh.
  EXPECT_EQ(directory.CountFor(1, 0), 2u);
  directory.Refresh(registry);
  EXPECT_EQ(directory.CountFor(1, 0), 0u);
  EXPECT_EQ(directory.FindShardWith(0, 0), ShardDirectory::kNoShard);
  // Nobody anywhere: no borrow target from shard 1 either.
  registry.provider(0).set_alive(false);
  registry.provider(1).set_alive(false);
  directory.Refresh(registry);
  EXPECT_EQ(directory.FindShardWith(0, 1), ShardDirectory::kNoShard);
}

}  // namespace
}  // namespace sbqa::core
