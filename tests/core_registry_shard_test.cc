// Tests for the partitioned registry (per-shard candidate-index views,
// contiguous provider blocks, per-shard consumer counters), the
// epoch-based membership mutation log (fixed apply order, deterministic
// join owner-shard hash, in-place partition growth) and the
// barrier-refreshed cross-shard candidate directory with its load-aware
// donor selection.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/shard_directory.h"
#include "util/rng.h"

namespace sbqa::core {
namespace {

void Populate(Registry* registry, size_t providers, size_t consumers) {
  for (size_t i = 0; i < providers; ++i) {
    ProviderParams params;
    params.capacity = 1.0 + static_cast<double>(i % 3);
    registry->AddProvider(params);
  }
  for (size_t i = 0; i < consumers; ++i) {
    registry->AddConsumer(ConsumerParams{});
  }
}

model::Query QueryOfClass(model::QueryClassId c) {
  model::Query query;
  query.query_class = c;
  return query;
}

TEST(RegistryShardTest, ContiguousBlocksCoverEveryProviderExactlyOnce) {
  Registry registry;
  Populate(&registry, 10, 3);
  registry.SetShardCount(4);
  // 10 providers over 4 shards: blocks of 3 -> 3, 3, 3, 1.
  std::vector<size_t> per_shard(4, 0);
  uint32_t last_shard = 0;
  for (model::ProviderId p = 0; p < 10; ++p) {
    const uint32_t shard = registry.ProviderShard(p);
    ASSERT_LT(shard, 4u);
    EXPECT_GE(shard, last_shard);  // contiguous, nondecreasing blocks
    last_shard = shard;
    ++per_shard[shard];
  }
  EXPECT_EQ(per_shard, (std::vector<size_t>{3, 3, 3, 1}));

  size_t total_alive = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    total_alive += registry.shard_index(s).alive_count();
  }
  EXPECT_EQ(total_alive, 10u);
  EXPECT_EQ(registry.alive_provider_count(), 10u);
}

TEST(RegistryShardTest, ShardViewsPartitionCandidates) {
  Registry registry;
  Populate(&registry, 12, 2);
  registry.SetShardCount(3);
  std::vector<model::ProviderId> scratch;
  std::vector<model::ProviderId> seen;
  for (uint32_t s = 0; s < 3; ++s) {
    const CandidateSet view =
        registry.CandidatesForShard(s, QueryOfClass(0), &scratch);
    EXPECT_EQ(view.size(), 4u);
    for (model::ProviderId p : view.All()) {
      EXPECT_EQ(registry.ProviderShard(p), s);
      seen.push_back(p);
    }
  }
  std::sort(seen.begin(), seen.end());
  std::vector<model::ProviderId> expected;
  for (model::ProviderId p = 0; p < 12; ++p) expected.push_back(p);
  EXPECT_EQ(seen, expected);  // disjoint union == whole population
}

TEST(RegistryShardTest, EligibilityChangesRouteToOwningPartition) {
  Registry registry;
  Populate(&registry, 8, 1);
  registry.SetShardCount(2);
  registry.provider(6).set_alive(false);  // shard 1 (block size 4)
  EXPECT_EQ(registry.shard_index(0).alive_count(), 4u);
  EXPECT_EQ(registry.shard_index(1).alive_count(), 3u);
  EXPECT_EQ(registry.alive_provider_count(), 7u);
  registry.provider(6).set_alive(true);
  EXPECT_EQ(registry.shard_index(1).alive_count(), 4u);
}

TEST(RegistryShardTest, PerShardSamplingStaysInPartition) {
  Registry registry;
  Populate(&registry, 20, 1);
  registry.SetShardCount(4);
  util::Rng rng(3);
  std::vector<model::ProviderId> scratch;
  std::vector<model::ProviderId> sample;
  for (int draw = 0; draw < 20; ++draw) {
    const CandidateSet view =
        registry.CandidatesForShard(2, QueryOfClass(0), &scratch);
    view.SampleUniform(3, rng, &sample);
    ASSERT_EQ(sample.size(), 3u);
    for (model::ProviderId p : sample) {
      EXPECT_EQ(registry.ProviderShard(p), 2u);
    }
  }
}

TEST(RegistryShardTest, ConsumerCountersArePerShard) {
  Registry registry;
  Populate(&registry, 4, 6);
  registry.SetShardCount(3);
  EXPECT_EQ(registry.active_consumer_count(), 6u);
  EXPECT_EQ(registry.ConsumerShard(0), 0u);
  EXPECT_EQ(registry.ConsumerShard(4), 1u);  // round robin
  registry.consumer(4).set_active(false);
  registry.consumer(2).set_active(false);
  EXPECT_EQ(registry.active_consumer_count(), 4u);
  registry.consumer(4).set_active(true);
  EXPECT_EQ(registry.active_consumer_count(), 5u);
}

TEST(RegistryShardTest, SingleShardKeepsIncrementallyBuiltIndex) {
  Registry registry;
  Populate(&registry, 6, 1);
  const CandidateIndex* before = &registry.candidate_index();
  registry.SetShardCount(1);
  // No rebuild: the exact index object (and therefore its sampling order)
  // survives, which keeps shard_count=1 bit-identical to the classic
  // engine.
  EXPECT_EQ(&registry.candidate_index(), before);
}

TEST(ShardDirectoryTest, CountsFollowPartitions) {
  Registry registry;
  Populate(&registry, 9, 3);
  registry.provider(0).RestrictClasses({model::QueryClassId{2}});
  registry.SetShardCount(3);
  ShardDirectory directory;
  directory.Refresh(registry);

  ASSERT_EQ(directory.shard_count(), 3u);
  // Shard 0: two generalists + one provider restricted to class 2.
  EXPECT_EQ(directory.CountFor(0, 0), 2u);
  EXPECT_EQ(directory.CountFor(0, 2), 3u);
  EXPECT_EQ(directory.CountFor(1, 0), 3u);
  EXPECT_EQ(directory.CountFor(2, 7), 3u);  // unknown class: generalists
}

TEST(ShardDirectoryTest, FindShardWithPicksLeastLoadedDonor) {
  Registry registry;
  Populate(&registry, 8, 2);
  registry.SetShardCount(4);
  // Starve shards 1 and 2 of class 5: restrict their providers to class 0.
  for (model::ProviderId p = 2; p < 6; ++p) {
    registry.provider(p).RestrictClasses({model::QueryClassId{0}});
  }
  // Consumers round-robin: c0 on shard 0, c1 on shard 1; shards 2 and 3
  // carry no consumer load.
  ShardDirectory directory;
  directory.Refresh(registry);

  // Class-5 candidates live on shards 0 (load 1 consumer / 2 candidates)
  // and 3 (load 0 / 2): the least-loaded donor is shard 3 from anywhere.
  EXPECT_EQ(directory.FindShardWith(5, 1), 3u);
  // From shard 3 itself the only remaining donor is shard 0.
  EXPECT_EQ(directory.FindShardWith(5, 3), 0u);
  // Class 0 is everywhere with 2 candidates per shard; loads are
  // {1, 1, 0, 0} consumers. From shard 0 the least-loaded donors are
  // shards 2 and 3 (tied at 0): the tie-break is the first in wrap order,
  // shard 2.
  EXPECT_EQ(directory.FindShardWith(0, 0), 2u);
  // Same tie from shard 2's perspective: wrap order 3 -> 0 -> 1 makes
  // shard 3 the deterministic winner.
  EXPECT_EQ(directory.FindShardWith(0, 2), 3u);

  // Retire c1: shard 1 drops to load 0 and the three-way tie goes to the
  // first shard in wrap order from the origin — shard 1.
  registry.consumer(1).set_active(false);
  directory.Refresh(registry);
  EXPECT_EQ(directory.FindShardWith(0, 0), 1u);
}

TEST(ShardDirectoryTest, LoadAwareSelectionPrefersFewerConsumersPerCandidate) {
  Registry registry;
  Populate(&registry, 9, 6);
  registry.SetShardCount(3);
  // Shard 2 loses two of its three providers: 6 consumers round-robin ->
  // 2 per shard; loads are shard 0: 2/3, shard 1: 2/3, shard 2: 2/1.
  registry.provider(7).set_alive(false);
  registry.provider(8).set_alive(false);
  ShardDirectory directory;
  directory.Refresh(registry);

  // From shard 2, both peers tie at 2 consumers / 3 candidates: wrap
  // order picks shard 0.
  EXPECT_EQ(directory.FindShardWith(0, 2), 0u);
  // From shard 0, shard 1 (2/3) beats shard 2 (2/1).
  EXPECT_EQ(directory.FindShardWith(0, 0), 1u);
  // Cross-multiplied comparison, not integer division: shard 1 with 2/3
  // load must also beat a later shard at 1/1 (1*3 > 2*1).
  registry.consumer(2).set_active(false);  // shard 2 -> 1 consumer
  directory.Refresh(registry);
  EXPECT_EQ(directory.ConsumersOn(2), 1u);
  EXPECT_EQ(directory.FindShardWith(0, 0), 1u);
}

/// Records the order AdvanceEpoch applies ops in.
class RecordingApplier : public MembershipApplier {
 public:
  explicit RecordingApplier(Registry* registry) : registry_(registry) {}

  void ApplyAvailability(model::ProviderId provider, bool available) override {
    log_.push_back(std::string("avail:") + std::to_string(provider) +
                   (available ? ":on" : ":off"));
    registry_->provider(provider).set_alive(available);
  }
  void ApplyDeparture(model::ProviderId provider) override {
    log_.push_back("depart:" + std::to_string(provider));
    if (!registry_->provider(provider).departed()) {
      registry_->provider(provider).MarkDeparted();
    }
  }
  void OnProviderJoined(model::ProviderId provider) override {
    log_.push_back("join:" + std::to_string(provider));
  }

  const std::vector<std::string>& log() const { return log_; }

 private:
  Registry* registry_;
  std::vector<std::string> log_;
};

TEST(RegistryMembershipTest, AdvanceEpochAppliesInKindShardFifoOrder) {
  Registry registry;
  Populate(&registry, 8, 2);
  registry.SetShardCount(2);
  RecordingApplier applier(&registry);

  // Interleave kinds and source shards; the application order must come
  // out kind-major (availability, departures, joins), shard-minor, FIFO
  // within a (kind, shard) slice — regardless of enqueue interleaving.
  registry.QueueDeparture(1, 6);
  registry.QueueAvailabilityChange(1, 5, false);
  registry.QueueJoin(0, [](Registry* r) {
    return r->AddProvider(ProviderParams{});
  });
  registry.QueueAvailabilityChange(0, 1, false);
  registry.QueueAvailabilityChange(0, 2, false);
  registry.QueueDeparture(0, 3);
  EXPECT_TRUE(registry.HasPendingMembershipOps());
  EXPECT_EQ(registry.membership_epoch(), 0u);

  registry.AdvanceEpoch(&applier);
  EXPECT_FALSE(registry.HasPendingMembershipOps());
  EXPECT_EQ(registry.membership_epoch(), 1u);
  EXPECT_EQ(registry.membership_ops_applied(), 6u);
  const std::vector<std::string> expected = {
      "avail:1:off", "avail:2:off", "avail:5:off",
      "depart:3",    "depart:6",    "join:8",
  };
  EXPECT_EQ(applier.log(), expected);

  // The joined provider grew the registry and its owner partition in
  // place; the owner shard is the deterministic id hash.
  EXPECT_EQ(registry.provider_count(), 9u);
  EXPECT_EQ(registry.ProviderShard(8), registry.JoinOwnerShard(8));
  size_t partition_alive = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    partition_alive += registry.shard_index(s).alive_count();
  }
  // Three offline + two departed out of the original 8, one alive join in.
  EXPECT_EQ(partition_alive, 4u);

  // An empty log is a no-op epoch: the counter must not advance.
  registry.AdvanceEpoch(&applier);
  EXPECT_EQ(registry.membership_epoch(), 1u);
}

TEST(RegistryMembershipTest, JoinOwnerShardIsStableAndCoversAllShards) {
  Registry registry;
  Populate(&registry, 8, 1);
  registry.SetShardCount(4);
  // Deterministic: same id, same shard, every time.
  for (model::ProviderId id = 8; id < 40; ++id) {
    EXPECT_EQ(registry.JoinOwnerShard(id), registry.JoinOwnerShard(id));
    EXPECT_LT(registry.JoinOwnerShard(id), 4u);
  }
  // And reasonably spread: over 64 future ids every shard owns some.
  std::vector<size_t> owned(4, 0);
  for (model::ProviderId id = 8; id < 72; ++id) {
    ++owned[registry.JoinOwnerShard(id)];
  }
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(owned[s], 0u) << "shard " << s << " owns no joined provider";
  }

  // AddProvider after SetShardCount routes the newcomer to its hashed
  // owner partition.
  const model::ProviderId id = registry.AddProvider(ProviderParams{});
  EXPECT_EQ(registry.ProviderShard(id), registry.JoinOwnerShard(id));
  EXPECT_TRUE(
      registry.shard_index(registry.ProviderShard(id)).ContainsFor(0, id));
}

TEST(RegistryMembershipTest, OpsQueuedDuringApplyLandInNextEpoch) {
  Registry registry;
  Populate(&registry, 4, 1);
  registry.SetShardCount(2);

  // An applier that reacts to a join by queueing a follow-up availability
  // change (the "joined volunteer starts offline" pattern).
  class ChainingApplier : public RecordingApplier {
   public:
    ChainingApplier(Registry* registry) : RecordingApplier(registry),
                                          registry_(registry) {}
    void OnProviderJoined(model::ProviderId provider) override {
      RecordingApplier::OnProviderJoined(provider);
      registry_->QueueAvailabilityChange(registry_->ProviderShard(provider),
                                         provider, false);
    }
   private:
    Registry* registry_;
  };

  ChainingApplier applier(&registry);
  registry.QueueJoin(0, [](Registry* r) {
    return r->AddProvider(ProviderParams{});
  });
  registry.AdvanceEpoch(&applier);
  EXPECT_EQ(registry.membership_epoch(), 1u);
  // The follow-up op was NOT applied in the same epoch...
  EXPECT_TRUE(registry.HasPendingMembershipOps());
  EXPECT_TRUE(registry.provider(4).alive());
  // ...but lands in the next one.
  registry.AdvanceEpoch(&applier);
  EXPECT_EQ(registry.membership_epoch(), 2u);
  EXPECT_FALSE(registry.provider(4).alive());
}

TEST(ShardDirectoryTest, RefreshIfChangedSnapshotsMembershipEpoch) {
  Registry registry;
  Populate(&registry, 6, 2);
  registry.SetShardCount(2);
  RecordingApplier applier(&registry);
  ShardDirectory directory;

  EXPECT_TRUE(directory.RefreshIfChanged(registry));  // first snapshot
  EXPECT_EQ(directory.epoch(), 0u);
  // Nothing changed: the refresh is skipped.
  EXPECT_FALSE(directory.RefreshIfChanged(registry));

  // An applied epoch invalidates the snapshot.
  registry.QueueAvailabilityChange(0, 1, false);
  registry.AdvanceEpoch(&applier);
  EXPECT_TRUE(directory.RefreshIfChanged(registry));
  EXPECT_EQ(directory.epoch(), 1u);
  EXPECT_EQ(directory.CountFor(0, 0), 2u);

  // So does a consumer-side load change (retirements are not epoch ops).
  registry.consumer(0).set_active(false);
  EXPECT_TRUE(directory.RefreshIfChanged(registry));
  EXPECT_EQ(directory.ConsumersOn(0), 0u);
  EXPECT_FALSE(directory.RefreshIfChanged(registry));
}

TEST(ShardDirectoryTest, RefreshTracksChurn) {
  Registry registry;
  Populate(&registry, 4, 1);
  registry.SetShardCount(2);
  ShardDirectory directory;
  directory.Refresh(registry);
  EXPECT_EQ(directory.CountFor(1, 0), 2u);

  registry.provider(2).set_alive(false);
  registry.provider(3).set_alive(false);
  // Stale until the next barrier refresh.
  EXPECT_EQ(directory.CountFor(1, 0), 2u);
  directory.Refresh(registry);
  EXPECT_EQ(directory.CountFor(1, 0), 0u);
  EXPECT_EQ(directory.FindShardWith(0, 0), ShardDirectory::kNoShard);
  // Nobody anywhere: no borrow target from shard 1 either.
  registry.provider(0).set_alive(false);
  registry.provider(1).set_alive(false);
  directory.Refresh(registry);
  EXPECT_EQ(directory.FindShardWith(0, 1), ShardDirectory::kNoShard);
}

}  // namespace
}  // namespace sbqa::core
