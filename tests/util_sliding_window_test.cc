// Tests for the k-interaction sliding windows behind the satisfaction model.

#include "util/sliding_window.h"

#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sbqa::util {
namespace {

TEST(SlidingWindowTest, StartsEmpty) {
  SlidingWindow<int> w(3);
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.full());
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.capacity(), 3u);
}

TEST(SlidingWindowTest, FillsInOrder) {
  SlidingWindow<int> w(3);
  w.Push(1);
  w.Push(2);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 1);
  EXPECT_EQ(w[1], 2);
  EXPECT_EQ(w.oldest(), 1);
  EXPECT_EQ(w.newest(), 2);
}

TEST(SlidingWindowTest, EvictsOldestWhenFull) {
  SlidingWindow<int> w(3);
  for (int i = 1; i <= 5; ++i) w.Push(i);
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.oldest(), 3);
  EXPECT_EQ(w.newest(), 5);
  EXPECT_EQ(w[0], 3);
  EXPECT_EQ(w[1], 4);
  EXPECT_EQ(w[2], 5);
}

TEST(SlidingWindowTest, CapacityOne) {
  SlidingWindow<int> w(1);
  w.Push(1);
  w.Push(2);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.newest(), 2);
  EXPECT_EQ(w.oldest(), 2);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow<int> w(3);
  w.Push(1);
  w.Push(2);
  w.Clear();
  EXPECT_TRUE(w.empty());
  w.Push(9);
  EXPECT_EQ(w.oldest(), 9);
}

TEST(SlidingWindowTest, ToVectorOldestFirst) {
  SlidingWindow<std::string> w(2);
  w.Push("a");
  w.Push("b");
  w.Push("c");
  const std::vector<std::string> v = w.ToVector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "b");
  EXPECT_EQ(v[1], "c");
}

TEST(WindowedMeanTest, EmptyUsesProvidedDefault) {
  WindowedMean m(4);
  EXPECT_EQ(m.Mean(), 0.0);
  EXPECT_EQ(m.Mean(0.5), 0.5);
}

TEST(WindowedMeanTest, PartialWindowMean) {
  WindowedMean m(4);
  m.Push(1);
  m.Push(3);
  EXPECT_DOUBLE_EQ(m.Mean(), 2.0);
}

TEST(WindowedMeanTest, EvictionAdjustsSum) {
  WindowedMean m(2);
  m.Push(10);
  m.Push(20);
  m.Push(30);  // evicts 10
  EXPECT_DOUBLE_EQ(m.Mean(), 25.0);
}

TEST(WindowedMeanTest, ClearResets) {
  WindowedMean m(2);
  m.Push(10);
  m.Clear();
  EXPECT_EQ(m.Mean(), 0.0);
  EXPECT_TRUE(m.empty());
}

// Property: the O(1) running mean always equals a brute-force recompute.
class WindowedMeanSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowedMeanSweep, RunningSumMatchesBruteForce) {
  const size_t capacity = GetParam();
  WindowedMean m(capacity);
  Rng rng(capacity * 977 + 1);
  for (int i = 0; i < 500; ++i) {
    m.Push(rng.Uniform(-10, 10));
    double expected = 0;
    for (size_t j = 0; j < m.window().size(); ++j) expected += m.window()[j];
    expected /= static_cast<double>(m.window().size());
    ASSERT_NEAR(m.Mean(), expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, WindowedMeanSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 50, 128));

}  // namespace
}  // namespace sbqa::util
