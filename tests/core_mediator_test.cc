// End-to-end tests of the mediation pipeline on small controlled systems.

#include "core/mediator.h"

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/capacity_based.h"
#include "core/sbqa.h"
#include "model/reputation.h"
#include "sim/simulation.h"

namespace sbqa::core {
namespace {

/// A small controllable system: preference-only policies, configurable
/// latency, capacity-1 providers by default.
struct TestSystem {
  explicit TestSystem(int providers, uint64_t seed = 1,
                      double latency = 0.0) {
    sim::SimulationConfig sim_config;
    sim_config.seed = seed;
    sim_config.latency_median = latency > 0 ? latency : 0.001;
    sim_config.latency_sigma = 0;  // constant latency for exact arithmetic
    simulation = std::make_unique<sim::Simulation>(sim_config);

    ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    consumer_params.n_results = 1;
    consumer = registry.AddConsumer(consumer_params);

    for (int i = 0; i < providers; ++i) {
      ProviderParams params;
      params.capacity = 1.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      registry.AddProvider(params);
    }
    reputation = std::make_unique<model::ReputationRegistry>(
        registry.provider_count());
    simulate_network = latency > 0;
  }

  /// Builds the mediator with `method`; call after customizing providers.
  void Start(std::unique_ptr<AllocationMethod> method,
             MediatorConfig config = {}) {
    config.simulate_network = simulate_network;
    mediator = std::make_unique<Mediator>(simulation.get(), &registry,
                                          reputation.get(), std::move(method),
                                          config);
  }

  void StartSbqa(SbqaParams params = {}) {
    Start(std::make_unique<SbqaMethod>(params));
  }

  model::Query MakeQuery(int n_results = 1, double cost = 2.0) {
    model::Query q;
    q.id = next_query_id++;
    q.consumer = consumer;
    q.n_results = n_results;
    q.cost = cost;
    return q;
  }

  std::unique_ptr<sim::Simulation> simulation;
  Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<Mediator> mediator;
  model::ConsumerId consumer = 0;
  model::QueryId next_query_id = 1;
  bool simulate_network = false;
};

/// Observer recording completed outcomes.
struct RecordingObserver : MediationObserver {
  void OnQueryCompleted(const QueryOutcome& outcome) override {
    outcomes.push_back(outcome);
  }
  void OnProviderDeparted(model::ProviderId p, double) override {
    departed.push_back(p);
  }
  std::vector<QueryOutcome> outcomes;
  std::vector<model::ProviderId> departed;
};

TEST(MediatorTest, SingleQueryLifecycle) {
  TestSystem sys(2);
  sys.registry.consumer(0).preferences().Set(0, 1.0);
  sys.registry.consumer(0).preferences().Set(1, 1.0);
  sys.registry.provider(0).preferences().Set(0, 1.0);
  sys.registry.provider(1).preferences().Set(0, 1.0);
  RecordingObserver obs;
  sys.StartSbqa();
  sys.mediator->AddObserver(&obs);

  sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/1, /*cost=*/2.0));
  sys.simulation->RunUntil(10.0);

  ASSERT_EQ(obs.outcomes.size(), 1u);
  const QueryOutcome& outcome = obs.outcomes.front();
  EXPECT_EQ(outcome.results_received, 1);
  EXPECT_FALSE(outcome.timed_out);
  EXPECT_FALSE(outcome.unallocated);
  // Cost 2 on capacity 1 with zero latency: exactly 2 seconds.
  EXPECT_NEAR(outcome.response_time, 2.0, 1e-9);
  // Both intentions were 1.0: perfect satisfaction.
  EXPECT_NEAR(outcome.satisfaction, 1.0, 1e-9);
  EXPECT_EQ(sys.mediator->stats().queries_finalized, 1);
  EXPECT_EQ(sys.mediator->stats().queries_fully_served, 1);
  EXPECT_EQ(sys.mediator->inflight_count(), 0u);
}

TEST(MediatorTest, ReplicationDispatchesToDistinctProviders) {
  TestSystem sys(4);
  RecordingObserver obs;
  sys.StartSbqa();
  sys.mediator->AddObserver(&obs);

  sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/3));
  sys.simulation->RunUntil(10.0);

  ASSERT_EQ(obs.outcomes.size(), 1u);
  EXPECT_EQ(obs.outcomes.front().results_received, 3);
  std::set<model::ProviderId> unique(obs.outcomes.front().performers.begin(),
                                     obs.outcomes.front().performers.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(MediatorTest, ConsumerSatisfactionTrackerUpdated) {
  TestSystem sys(2);
  sys.registry.consumer(0).preferences().Set(0, 0.0);  // norm 0.5
  sys.registry.consumer(0).preferences().Set(1, 0.0);
  sys.StartSbqa();
  for (int i = 0; i < 5; ++i) {
    sys.mediator->SubmitQuery(sys.MakeQuery());
  }
  sys.simulation->RunUntil(60.0);
  const Consumer& c = sys.registry.consumer(0);
  EXPECT_EQ(c.satisfaction_tracker().sample_count(), 5u);
  EXPECT_NEAR(c.satisfaction(), 0.5, 1e-9);
}

TEST(MediatorTest, SbqaConsultsKnAndRecordsProposals) {
  TestSystem sys(6);
  SbqaParams params;
  params.knbest = KnBestParams{6, 4};  // consult 4 of 6
  sys.StartSbqa(params);

  sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/1));
  sys.simulation->RunUntil(10.0);

  size_t proposals = 0, performed = 0;
  for (const Provider& p : sys.registry.providers()) {
    proposals += p.satisfaction_tracker().proposal_count();
    performed += p.satisfaction_tracker().performed_count();
  }
  EXPECT_EQ(proposals, 4u);  // all of Kn heard the mediation result
  EXPECT_EQ(performed, 1u);  // only the winner performed
}

TEST(MediatorTest, BaselineConsultsOnlySelected) {
  TestSystem sys(6);
  sys.Start(std::make_unique<baselines::CapacityBasedMethod>());
  sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/2));
  sys.simulation->RunUntil(10.0);

  size_t proposals = 0, performed = 0;
  for (const Provider& p : sys.registry.providers()) {
    proposals += p.satisfaction_tracker().proposal_count();
    performed += p.satisfaction_tracker().performed_count();
  }
  EXPECT_EQ(proposals, 2u);
  EXPECT_EQ(performed, 2u);
}

TEST(MediatorTest, UnallocatedWhenNoProviderAlive) {
  TestSystem sys(2);
  sys.registry.provider(0).set_alive(false);
  sys.registry.provider(1).set_alive(false);
  RecordingObserver obs;
  sys.StartSbqa();
  sys.mediator->AddObserver(&obs);

  sys.mediator->SubmitQuery(sys.MakeQuery());
  sys.simulation->RunUntil(10.0);

  ASSERT_EQ(obs.outcomes.size(), 1u);
  EXPECT_TRUE(obs.outcomes.front().unallocated);
  EXPECT_EQ(obs.outcomes.front().satisfaction, 0.0);
  EXPECT_EQ(sys.mediator->stats().queries_unallocated, 1);
  // The dissatisfying outcome still lands in the consumer's window.
  EXPECT_EQ(sys.registry.consumer(0).satisfaction_tracker().sample_count(),
            1u);
}

TEST(MediatorTest, PartialAllocationWhenFewerProvidersThanReplicas) {
  TestSystem sys(2);
  sys.registry.consumer(0).preferences().Set(0, 1.0);
  sys.registry.consumer(0).preferences().Set(1, 1.0);
  RecordingObserver obs;
  sys.StartSbqa();
  sys.mediator->AddObserver(&obs);

  sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/4));
  sys.simulation->RunUntil(10.0);

  ASSERT_EQ(obs.outcomes.size(), 1u);
  EXPECT_EQ(obs.outcomes.front().results_received, 2);
  // Equation 1 divides by n=4: two perfect results give 0.5.
  EXPECT_NEAR(obs.outcomes.front().satisfaction, 0.5, 1e-9);
  EXPECT_EQ(sys.mediator->stats().queries_fully_served, 0);
}

TEST(MediatorTest, TimeoutFinalizesWithPartialResults) {
  RecordingObserver obs;
  TestSystem sys2(1);
  MediatorConfig cfg;
  cfg.query_timeout = 1.0;
  sys2.Start(std::make_unique<SbqaMethod>(SbqaParams{}), cfg);
  sys2.mediator->AddObserver(&obs);
  sys2.mediator->SubmitQuery(sys2.MakeQuery(/*n_results=*/1, /*cost=*/5.0));
  sys2.simulation->RunUntil(20.0);

  ASSERT_EQ(obs.outcomes.size(), 1u);
  EXPECT_TRUE(obs.outcomes.front().timed_out);
  EXPECT_EQ(obs.outcomes.front().results_received, 0);
  EXPECT_EQ(sys2.mediator->stats().queries_timed_out, 1);
  // The provider still finishes and gets accounted for its work.
  EXPECT_EQ(sys2.registry.provider(0).instances_performed(), 1);
}

TEST(MediatorTest, ReputationTracksValidation) {
  TestSystem sys(1);
  // Build a faulty provider alongside.
  ProviderParams faulty;
  faulty.capacity = 1.0;
  faulty.error_rate = 1.0;  // always invalid
  faulty.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
  const model::ProviderId bad = sys.registry.AddProvider(faulty);
  sys.reputation = std::make_unique<model::ReputationRegistry>(
      sys.registry.provider_count());
  RecordingObserver obs;
  sys.StartSbqa();
  sys.mediator->AddObserver(&obs);

  for (int i = 0; i < 10; ++i) {
    sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/2, /*cost=*/0.5));
  }
  sys.simulation->RunUntil(60.0);

  // The good provider's reputation rose, the faulty one's fell.
  EXPECT_GT(sys.reputation->Get(0), 0.5);
  EXPECT_LT(sys.reputation->Get(bad), 0.5);
  // Every query had one valid result (quorum 1 by default): validated,
  // but valid_results < results_received.
  for (const QueryOutcome& outcome : obs.outcomes) {
    EXPECT_EQ(outcome.results_received, 2);
    EXPECT_EQ(outcome.valid_results, 1);
    EXPECT_TRUE(outcome.validated);
  }
}

TEST(MediatorTest, ProviderDepartureFailsInFlightInstances) {
  TestSystem sys(2);
  // Provider 1 hates the consumer: performing its queries dissatisfies it.
  sys.registry.provider(0).preferences().Set(0, 1.0);
  sys.registry.provider(1).preferences().Set(0, -1.0);
  RecordingObserver obs;
  sys.StartSbqa();
  sys.mediator->AddObserver(&obs);
  DepartureConfig departure;
  departure.providers_can_leave = true;
  departure.provider_threshold = 0.35;
  departure.grace_period = 0.0;  // judge immediately
  departure.sweep_interval = 0.5;
  sys.mediator->SetDepartureModel(departure);

  for (int i = 0; i < 30; ++i) {
    sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/2, /*cost=*/1.0));
  }
  sys.simulation->RunUntil(120.0);

  // Provider 1 left (its performed queries all have normalized intention 0).
  EXPECT_FALSE(sys.registry.provider(1).alive());
  EXPECT_EQ(sys.mediator->stats().provider_departures, 1);
  ASSERT_FALSE(obs.departed.empty());
  EXPECT_EQ(obs.departed.front(), 1);
  // All queries still finalize (possibly partially).
  EXPECT_EQ(sys.mediator->stats().queries_finalized, 30);
  EXPECT_EQ(sys.mediator->inflight_count(), 0u);
  // Later queries went to provider 0 alone.
  EXPECT_GT(sys.mediator->stats().instances_failed, 0);
}

TEST(MediatorTest, IntentionRoundAddsLatency) {
  // With constant latency L: capacity path = 3 hops = 3L + processing;
  // SbQA adds one round-trip = 2L more.
  const double kLatency = 0.05;
  RecordingObserver obs_sbqa, obs_cap;

  TestSystem sys_sbqa(2, /*seed=*/3, kLatency);
  sys_sbqa.StartSbqa();
  sys_sbqa.mediator->AddObserver(&obs_sbqa);
  sys_sbqa.mediator->SubmitQuery(sys_sbqa.MakeQuery(1, 1.0));
  sys_sbqa.simulation->RunUntil(10.0);

  TestSystem sys_cap(2, /*seed=*/3, kLatency);
  sys_cap.Start(std::make_unique<baselines::CapacityBasedMethod>());
  sys_cap.mediator->AddObserver(&obs_cap);
  sys_cap.mediator->SubmitQuery(sys_cap.MakeQuery(1, 1.0));
  sys_cap.simulation->RunUntil(10.0);

  ASSERT_EQ(obs_sbqa.outcomes.size(), 1u);
  ASSERT_EQ(obs_cap.outcomes.size(), 1u);
  EXPECT_NEAR(obs_cap.outcomes.front().response_time, 3 * kLatency + 1.0,
              1e-9);
  EXPECT_NEAR(obs_sbqa.outcomes.front().response_time, 5 * kLatency + 1.0,
              1e-9);
}

TEST(MediatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    TestSystem sys(8, /*seed=*/99, /*latency=*/0.02);
    sys.StartSbqa();
    for (int i = 0; i < 50; ++i) {
      sys.mediator->SubmitQuery(sys.MakeQuery(2, 1.5));
    }
    sys.simulation->RunUntil(300.0);
    return sys.mediator->stats();
  };
  const MediatorStats a = run();
  const MediatorStats b = run();
  EXPECT_EQ(a.queries_finalized, b.queries_finalized);
  EXPECT_EQ(a.instances_dispatched, b.instances_dispatched);
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_DOUBLE_EQ(a.query_satisfaction.mean(), b.query_satisfaction.mean());
}

TEST(MediatorTest, HelpersComputeParallelArrays) {
  TestSystem sys(3);
  sys.registry.consumer(0).preferences().Set(0, 0.1);
  sys.registry.consumer(0).preferences().Set(1, 0.2);
  sys.registry.consumer(0).preferences().Set(2, 0.3);
  sys.registry.provider(0).preferences().Set(0, -0.1);
  sys.registry.provider(1).preferences().Set(0, -0.2);
  sys.registry.provider(2).preferences().Set(0, -0.3);
  sys.StartSbqa();

  model::Query q = sys.MakeQuery();
  const std::vector<model::ProviderId> providers{0, 1, 2};
  const auto ci = sys.mediator->ComputeConsumerIntentions(q, providers);
  const auto pi = sys.mediator->ComputeProviderIntentions(q, providers);
  ASSERT_EQ(ci.size(), 3u);
  ASSERT_EQ(pi.size(), 3u);
  EXPECT_DOUBLE_EQ(ci[0], 0.1);
  EXPECT_DOUBLE_EQ(ci[2], 0.3);
  EXPECT_DOUBLE_EQ(pi[0], -0.1);
  EXPECT_DOUBLE_EQ(pi[2], -0.3);

  sys.registry.provider(1).Enqueue(0.0, 7.0);
  const auto backlogs = sys.mediator->BacklogsOf(providers);
  EXPECT_DOUBLE_EQ(backlogs[0], 0.0);
  EXPECT_DOUBLE_EQ(backlogs[1], 7.0);
}

TEST(MediatorTest, FreshLoadViewTracksBacklogExactly) {
  TestSystem sys(2);
  sys.StartSbqa();  // load_view_staleness = 0 (default)
  sys.registry.provider(0).Enqueue(0.0, 6.0);
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 6.0);
  sys.registry.provider(0).Enqueue(0.0, 4.0);
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 10.0);
}

TEST(MediatorTest, StaleLoadViewCachesReports) {
  TestSystem sys(2);
  MediatorConfig config;
  config.load_view_staleness = 100.0;
  sys.Start(std::make_unique<SbqaMethod>(SbqaParams{}), config);

  // First read establishes a report of 0 backlog.
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 0.0);
  // Real backlog changes; the view must not see it yet.
  sys.registry.provider(0).Enqueue(0.0, 10.0);
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 0.0);
  EXPECT_DOUBLE_EQ(sys.registry.provider(0).Backlog(0.0), 10.0);
}

TEST(MediatorTest, StaleLoadViewAssumesDrainage) {
  TestSystem sys(2);
  MediatorConfig config;
  config.load_view_staleness = 100.0;
  sys.Start(std::make_unique<SbqaMethod>(SbqaParams{}), config);

  sys.registry.provider(0).Enqueue(0.0, 8.0);
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 8.0);  // fresh report
  sys.simulation->RunUntil(3.0);
  // No refresh yet (staleness 100), but the view drains linearly.
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 5.0);
  sys.simulation->RunUntil(50.0);
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 0.0);  // never negative
}

TEST(MediatorTest, StaleLoadViewRefreshesAfterWindow) {
  TestSystem sys(2);
  MediatorConfig config;
  config.load_view_staleness = 10.0;
  sys.Start(std::make_unique<SbqaMethod>(SbqaParams{}), config);

  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 0.0);
  sys.registry.provider(0).Enqueue(0.0, 50.0);
  sys.simulation->RunUntil(10.0);
  // Past the staleness window: the next read refreshes to the truth.
  EXPECT_DOUBLE_EQ(sys.mediator->ViewedBacklog(0), 40.0);
}

TEST(MediatorTest, SelectionTruncatedToNResults) {
  TestSystem sys(6);
  sys.Start(std::make_unique<baselines::CapacityBasedMethod>());
  sys.mediator->SubmitQuery(sys.MakeQuery(/*n_results=*/2));
  sys.simulation->RunUntil(10.0);
  EXPECT_EQ(sys.mediator->stats().instances_dispatched, 2);
}

TEST(MediatorTest, ConsumerRetirementStopsAtThreshold) {
  TestSystem sys(2);
  // The consumer hates both providers: every completion dissatisfies it.
  sys.registry.consumer(0).preferences().Set(0, -1.0);
  sys.registry.consumer(0).preferences().Set(1, -1.0);
  sys.StartSbqa();
  DepartureConfig departure;
  departure.consumers_can_leave = true;
  departure.consumer_threshold = 0.5;
  departure.grace_period = 0.0;
  departure.sweep_interval = 0.5;
  sys.mediator->SetDepartureModel(departure);

  sys.mediator->SubmitQuery(sys.MakeQuery());
  sys.simulation->RunUntil(20.0);

  EXPECT_FALSE(sys.registry.consumer(0).active());
  EXPECT_EQ(sys.mediator->stats().consumer_retirements, 1);
}

}  // namespace
}  // namespace sbqa::core
