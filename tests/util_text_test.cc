// Tests for string formatting, tables, CSV and ASCII charts.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

namespace sbqa::util {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(StrFormatTest, EmptyAndLongStrings) {
  EXPECT_EQ(StrFormat("%s", ""), "");
  const std::string big(5000, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 5000u);
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoSeparator) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Each line is equally wide for the shared columns (right-aligned col 2).
  EXPECT_NE(s.find("        1"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable t;
  t.AddNumericRow("row", {1.23456, 2.0}, 2);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"x,y", "2"});
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "a,b\nx;y,2\n");  // embedded comma sanitized
}

TEST(CsvWriterTest, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/sbqa_csv_test.csv";
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  w.WriteRow({"t", "v"});
  w.WriteNumericRow({1.5, 2.25}, 2);
  w.Close();

  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "t,v");
  EXPECT_EQ(line2, "1.50,2.25");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailureReported) {
  CsvWriter w;
  EXPECT_FALSE(w.Open("/nonexistent-dir-xyz/file.csv").ok());
}

TEST(AsciiChartTest, RendersSeriesAndLegend) {
  ChartSeries s1{"up", {0, 1, 2, 3, 4}};
  ChartSeries s2{"down", {4, 3, 2, 1, 0}};
  const std::string chart = RenderLineChart({s1, s2});
  EXPECT_NE(chart.find("* = up"), std::string::npos);
  EXPECT_NE(chart.find("+ = down"), std::string::npos);
  EXPECT_NE(chart.find('|'), std::string::npos);
}

TEST(AsciiChartTest, HandlesEmptySeries) {
  const std::string chart = RenderLineChart({ChartSeries{"none", {}}});
  EXPECT_FALSE(chart.empty());
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  const std::string chart =
      RenderLineChart({ChartSeries{"flat", {2, 2, 2, 2}}});
  EXPECT_FALSE(chart.empty());
}

TEST(AsciiChartTest, DownsamplesLongSeries) {
  std::vector<double> values(10000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  ChartOptions options;
  options.width = 40;
  const std::string chart =
      RenderLineChart({ChartSeries{"long", values}}, options);
  EXPECT_FALSE(chart.empty());
}

TEST(AsciiChartTest, FixedRangeRespected) {
  ChartOptions options;
  options.y_auto = false;
  options.y_min = 0;
  options.y_max = 1;
  const std::string chart =
      RenderLineChart({ChartSeries{"s", {0.5, 0.5}}}, options);
  EXPECT_NE(chart.find("1.000"), std::string::npos);
  EXPECT_NE(chart.find("0.000"), std::string::npos);
}

TEST(BarChartTest, RendersLabelsAndValues) {
  const std::string chart = RenderBarChart({"aa", "b"}, {2.0, 1.0}, 10);
  EXPECT_NE(chart.find("aa"), std::string::npos);
  EXPECT_NE(chart.find("2.000"), std::string::npos);
  // The larger value gets the full width of hashes.
  EXPECT_NE(chart.find("##########"), std::string::npos);
}

TEST(BarChartTest, AllZeroValues) {
  const std::string chart = RenderBarChart({"x"}, {0.0}, 10);
  EXPECT_NE(chart.find("0.000"), std::string::npos);
}

}  // namespace
}  // namespace sbqa::util
