// Unit tests for the federation routing planes: PeerSet topologies and
// the BFS next-hop table, the RouteState loop-prevention ticket, the
// SatisfactionDigest exchange rows, and the RouteScorer's two scoring
// regimes — including the golden requirement that weight == 0 scoring
// over a full mesh reproduces ShardDirectory::FindShardWith
// target-for-target.

#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/shard_directory.h"
#include "federation/digest.h"
#include "federation/peer_set.h"
#include "federation/route_scorer.h"
#include "federation/route_state.h"

namespace sbqa::federation {
namespace {

TEST(PeerSetTest, MeshPeersAreEveryOtherShardInForwardWrapOrder) {
  PeerSet peers;
  peers.Build(TopologyKind::kFullMesh, 4, /*degree=*/4);
  EXPECT_EQ(peers.PeersOf(0), (std::vector<uint32_t>{1, 2, 3}));
  // Wrap order starts after the owning shard, not at zero.
  EXPECT_EQ(peers.PeersOf(2), (std::vector<uint32_t>{3, 0, 1}));
  // Every destination is adjacent: the next hop IS the destination.
  for (uint32_t from = 0; from < 4; ++from) {
    for (uint32_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      EXPECT_EQ(peers.NextHopToward(from, to), to);
    }
  }
}

TEST(PeerSetTest, RingPeersAreTheTwoNeighbors) {
  PeerSet peers;
  peers.Build(TopologyKind::kRing, 6, /*degree=*/2);
  // Forward wrap order: successor first, predecessor (step n-1) last.
  EXPECT_EQ(peers.PeersOf(0), (std::vector<uint32_t>{1, 5}));
  EXPECT_EQ(peers.PeersOf(4), (std::vector<uint32_t>{5, 3}));
  // A two-shard ring has one neighbor, not a duplicated pair.
  PeerSet pair;
  pair.Build(TopologyKind::kRing, 2, /*degree=*/2);
  EXPECT_EQ(pair.PeersOf(0), (std::vector<uint32_t>{1}));
  EXPECT_EQ(pair.PeersOf(1), (std::vector<uint32_t>{0}));
}

TEST(PeerSetTest, RingNextHopFollowsShortestPathWithForwardTieBreak) {
  PeerSet peers;
  peers.Build(TopologyKind::kRing, 6, /*degree=*/2);
  // Strictly nearer one way round: go that way.
  EXPECT_EQ(peers.NextHopToward(0, 2), 1u);
  EXPECT_EQ(peers.NextHopToward(0, 4), 5u);
  // Diametrically opposite (3 hops either way): BFS expands the peer
  // list in order, and the successor is listed first.
  EXPECT_EQ(peers.NextHopToward(0, 3), 1u);
  EXPECT_EQ(peers.NextHopToward(2, 5), 3u);
  // No route to self.
  EXPECT_EQ(peers.NextHopToward(3, 3), PeerSet::kNoShard);
}

TEST(PeerSetTest, KRegularTakesNearestOffsetsAndRoutesThroughThem) {
  PeerSet peers;
  peers.Build(TopologyKind::kKRegular, 8, /*degree=*/4);
  // Degree 4: offsets +1, +2 forward and -2, -1 back (as steps 6, 7).
  EXPECT_EQ(peers.PeersOf(0), (std::vector<uint32_t>{1, 2, 6, 7}));
  EXPECT_EQ(peers.PeersOf(5), (std::vector<uint32_t>{6, 7, 3, 4}));
  // Shard 4 is two +2 strides from 0; the first stride is the next hop.
  EXPECT_EQ(peers.NextHopToward(0, 4), 2u);
  EXPECT_EQ(peers.NextHopToward(0, 3), 1u);  // via +1 then +2
}

TEST(PeerSetTest, KRegularCollapsesToMeshWhenDegreeCoversTheRing) {
  PeerSet peers;
  peers.Build(TopologyKind::kKRegular, 4, /*degree=*/4);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(peers.PeersOf(s).size(), 3u);
    for (uint32_t peer : peers.PeersOf(s)) {
      EXPECT_EQ(peers.NextHopToward(s, peer), peer);
    }
  }
}

TEST(RouteStateTest, VisitedBitmapMakesChainsLoopFree) {
  RouteState route;
  route.Begin(/*origin=*/3, /*budget=*/4);
  EXPECT_TRUE(route.Visited(3));
  EXPECT_FALSE(route.Visited(0));
  EXPECT_EQ(route.hops, 0);
  EXPECT_EQ(route.path[0], 3u);

  EXPECT_EQ(route.AdvanceTo(1), 1);
  EXPECT_EQ(route.AdvanceTo(0), 2);
  EXPECT_TRUE(route.Visited(1));
  EXPECT_TRUE(route.Visited(0));
  EXPECT_EQ(route.path[1], 1u);
  EXPECT_EQ(route.path[2], 0u);

  // Re-arming clears the previous chain's visited set and path.
  route.Begin(/*origin=*/2, /*budget=*/1);
  EXPECT_FALSE(route.Visited(1));
  EXPECT_TRUE(route.Visited(2));
  EXPECT_EQ(route.hops, 0);
}

TEST(SatisfactionDigestTest, NeutralBeforePublishAndFallsBackToShardMean) {
  SatisfactionDigest digest;
  digest.Reset(3);
  EXPECT_EQ(digest.shard_count(), 3u);
  EXPECT_EQ(digest.ShardSatisfaction(1), SatisfactionDigest::kNeutral);
  EXPECT_EQ(digest.ClassSatisfaction(1, 5), SatisfactionDigest::kNeutral);

  digest.BeginShard(1, 0.8);
  digest.RecordClass(1, 2, 0.25);
  digest.RecordClass(1, 7, 0.9);
  EXPECT_DOUBLE_EQ(digest.ShardSatisfaction(1), 0.8);
  EXPECT_DOUBLE_EQ(digest.ClassSatisfaction(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(digest.ClassSatisfaction(1, 7), 0.9);
  // A class the shard never served scores as the shard mean.
  EXPECT_DOUBLE_EQ(digest.ClassSatisfaction(1, 3), 0.8);
  // Other shards stay neutral.
  EXPECT_EQ(digest.ClassSatisfaction(0, 2), SatisfactionDigest::kNeutral);

  // Republishing a window replaces the row rather than appending to it.
  digest.BeginShard(1, 0.4);
  digest.RecordClass(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(digest.ClassSatisfaction(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(digest.ClassSatisfaction(1, 7), 0.4);  // fallback again
}

/// Registry fixture shared by the scorer tests: `providers` generalists
/// and `consumers` round-robined over `shards` partitions.
void PopulateRegistry(core::Registry* registry, size_t providers,
                      size_t consumers, uint32_t shards) {
  for (size_t i = 0; i < providers; ++i) {
    core::ProviderParams params;
    params.capacity = 1.0;
    registry->AddProvider(params);
  }
  for (size_t i = 0; i < consumers; ++i) {
    registry->AddConsumer(core::ConsumerParams{});
  }
  registry->SetShardCount(shards);
}

TEST(RouteScorerTest, WeightZeroOnMeshMatchesDirectoryDonorSelection) {
  // The golden equality at the unit level: for every (origin, class) the
  // scorer with digest_weight 0 over a full mesh must pick exactly the
  // shard FindShardWith picks — same load arithmetic, same scan order,
  // same tie-break.
  core::Registry registry;
  PopulateRegistry(&registry, 12, 5, 4);
  // Skew the load: shard 0 keeps generalists; starve shard 1 of class 2;
  // kill one provider on shard 3.
  for (model::ProviderId p = 3; p < 6; ++p) {
    registry.provider(p).RestrictClasses({model::QueryClassId{0}});
  }
  registry.provider(11).set_alive(false);
  core::ShardDirectory directory;
  directory.Refresh(registry);

  PeerSet peers;
  peers.Build(TopologyKind::kFullMesh, 4, /*degree=*/4);
  SatisfactionDigest digest;
  digest.Reset(4);
  RouteScorer scorer;
  scorer.Configure(&peers, &directory, &digest, /*digest_weight=*/0.0);

  for (uint32_t from = 0; from < 4; ++from) {
    for (model::QueryClassId cls = 0; cls < 4; ++cls) {
      const uint64_t visited = uint64_t{1} << from;
      EXPECT_EQ(scorer.PickNext(from, cls, visited),
                directory.FindShardWith(cls, from))
          << "from shard " << from << ", class " << cls;
    }
  }
}

TEST(RouteScorerTest, VisitedShardsAreOffLimits) {
  core::Registry registry;
  PopulateRegistry(&registry, 9, 3, 3);
  core::ShardDirectory directory;
  directory.Refresh(registry);
  PeerSet peers;
  peers.Build(TopologyKind::kFullMesh, 3, /*degree=*/2);
  SatisfactionDigest digest;
  digest.Reset(3);
  RouteScorer scorer;
  scorer.Configure(&peers, &directory, &digest, 0.0);

  const uint32_t first = scorer.PickNext(0, 0, uint64_t{1} << 0);
  ASSERT_NE(first, RouteScorer::kNoShard);
  // Mark the winner visited: the runner-up takes over.
  const uint64_t visited = (uint64_t{1} << 0) | (uint64_t{1} << first);
  const uint32_t second = scorer.PickNext(0, 0, visited);
  ASSERT_NE(second, RouteScorer::kNoShard);
  EXPECT_NE(second, first);
  // Everything visited: the chain is stuck.
  EXPECT_EQ(scorer.PickNext(0, 0, visited | (uint64_t{1} << second)),
            RouteScorer::kNoShard);
}

TEST(RouteScorerTest, DigestWeightSteersTiesTowardSatisfiedShards) {
  // Shards 1 and 2 are symmetric in capacity and load; with weight 0 the
  // scan-order tie-break picks shard 1, with weight > 0 the higher
  // published satisfaction flips the pick to shard 2.
  core::Registry registry;
  PopulateRegistry(&registry, 9, 0, 3);
  core::ShardDirectory directory;
  directory.Refresh(registry);
  PeerSet peers;
  peers.Build(TopologyKind::kFullMesh, 3, /*degree=*/2);
  SatisfactionDigest digest;
  digest.Reset(3);
  digest.BeginShard(1, 0.2);
  digest.RecordClass(1, 0, 0.2);
  digest.BeginShard(2, 0.9);
  digest.RecordClass(2, 0, 0.9);

  RouteScorer neutral;
  neutral.Configure(&peers, &directory, &digest, 0.0);
  EXPECT_EQ(neutral.PickNext(0, 0, uint64_t{1} << 0), 1u);

  RouteScorer weighted;
  weighted.Configure(&peers, &directory, &digest, 1.0);
  EXPECT_EQ(weighted.PickNext(0, 0, uint64_t{1} << 0), 2u);
}

TEST(RouteScorerTest, RingRoutesThroughDryIntermediateTowardRemoteDonor) {
  // Ring of 4: shard 0's peers are 1 and 3. Both are dry for class 5;
  // only shard 2 (not adjacent) has candidates. The gradient fallback
  // must emit the first hop toward shard 2 — shard 1 by peer order —
  // even though shard 1 itself has nothing.
  core::Registry registry;
  PopulateRegistry(&registry, 8, 0, 4);
  for (model::ProviderId p = 0; p < 8; ++p) {
    if (registry.ProviderShard(p) != 2) {
      registry.provider(p).RestrictClasses({model::QueryClassId{0}});
    }
  }
  core::ShardDirectory directory;
  directory.Refresh(registry);
  PeerSet peers;
  peers.Build(TopologyKind::kRing, 4, /*degree=*/2);
  SatisfactionDigest digest;
  digest.Reset(4);
  RouteScorer scorer;
  scorer.Configure(&peers, &directory, &digest, 0.0);

  EXPECT_EQ(scorer.PickNext(0, 5, uint64_t{1} << 0), 1u);
  // The chain lands on shard 1 (dry) and relays: shard 2 is adjacent now.
  EXPECT_EQ(scorer.PickNext(1, 5, (uint64_t{1} << 0) | (uint64_t{1} << 1)),
            2u);
  // Loop prevention binds transit hops too: from shard 0 with shard 1
  // already visited, the shortest-path intermediate toward the donor is
  // off-limits and the chain reports stuck instead of looping.
  EXPECT_EQ(scorer.PickNext(0, 5, (uint64_t{1} << 0) | (uint64_t{1} << 1)),
            RouteScorer::kNoShard);
  // And once the only donor is visited there is nowhere to go at all.
  const uint64_t all_but_3 =
      (uint64_t{1} << 0) | (uint64_t{1} << 1) | (uint64_t{1} << 2);
  EXPECT_EQ(scorer.PickNext(0, 5, all_but_3), RouteScorer::kNoShard);
}

}  // namespace
}  // namespace sbqa::federation
