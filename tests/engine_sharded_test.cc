// Thread-per-shard wall-clock serving tests: the rt::WallClockShardSet
// barrier fabric (manual lock-step windows, mailbox FIFO, fill-triggered
// early barriers, control ops) and the sharded sbqa::Engine built on it —
// cross-shard query serving, post-Start membership through the epoch join
// log, the shards=1 pass-through, and the counting-allocator gate holding
// the sharded Submit path to ZERO heap allocations per query at steady
// state, membership churn included.
//
// Lives in its own test binary because it replaces the global operator
// new/delete (via util/counting_alloc.h; counting only, allocation
// behavior is unchanged). The threaded tests double as the TSan targets
// for the rendezvous protocol.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "runtime/wallclock_shard_set.h"
#include "util/counting_alloc.h"

namespace sbqa {
namespace {

using util::AllocationCount;

// --- WallClockShardSet fabric ------------------------------------------------

rt::WallClockShardOptions ManualFabric(uint32_t shards) {
  rt::WallClockShardOptions options;
  options.shard_count = shards;
  options.manual_clock = true;
  options.barrier_tick = 0.002;
  return options;
}

TEST(WallClockShardSetTest, ManualWindowsDeliverMailboxesInFifoOrder) {
  rt::WallClockShardSet shards(ManualFabric(2));
  shards.Start();
  std::vector<int> order;
  // Driver context between windows counts as any shard's execution
  // context, so it may write the (0, 1) and (1, 0) channels directly.
  shards.PostTo(0, 1, 0.0, [&order] { order.push_back(1); });
  shards.PostTo(0, 1, 0.0, [&order] { order.push_back(2); });
  shards.PostTo(1, 0, 0.0, [&order] { order.push_back(3); });
  shards.RunUntil(0.01);
  // (destination, source, FIFO) drain: dst 0 gets shard 1's message first.
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
  EXPECT_EQ(shards.cross_shard_messages(), 3u);
  EXPECT_GT(shards.barriers(), 0u);
  EXPECT_EQ(shards.now(), 0.01);
  shards.Stop();
}

TEST(WallClockShardSetTest, ManualCrossShardChainsSettleAtTheHorizon) {
  rt::WallClockShardSet shards(ManualFabric(2));
  shards.Start();
  int hops = 0;
  // A ping-pong chain: each delivery posts the next hop back. RunUntil
  // must settle every hop due at the horizon, not leave them buffered.
  std::function<void(uint32_t)> hop = [&](uint32_t at) {
    if (++hops >= 6) return;
    shards.PostTo(at, 1 - at, shards.runtime(at).now(),
                  [&hop, at] { hop(1 - at); });
  };
  shards.PostTo(0, 1, 0.0, [&hop] { hop(1); });
  shards.RunUntil(0.05);
  EXPECT_EQ(hops, 6);
  shards.Stop();
}

TEST(WallClockShardSetTest, ManualRunAtBarrierRunsInline) {
  rt::WallClockShardSet shards(ManualFabric(2));
  shards.Start();
  bool ran = false;
  shards.RunAtBarrier([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // no workers: the caller IS the quiescent driver
  shards.Stop();
}

TEST(WallClockShardSetTest, ThreadedBarriersDeliverCrossShardTraffic) {
  rt::WallClockShardOptions options;
  options.shard_count = 2;
  options.barrier_tick = 0.001;
  rt::WallClockShardSet shards(options);
  shards.Start();
  std::atomic<int> delivered{0};
  // Cross-shard posts must originate in the source shard's executor
  // context: hop through shard 0's submit queue.
  for (int i = 0; i < 8; ++i) {
    shards.runtime(0).Post([&shards, &delivered] {
      shards.PostTo(0, 1, shards.runtime(0).now(), [&delivered] {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (int spin = 0; spin < 2000 && delivered.load() < 8; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), 8);
  EXPECT_GT(shards.barriers(), 0u);
  shards.Stop();
}

TEST(WallClockShardSetTest, ThreadedFillThresholdPullsTheBarrierEarly) {
  rt::WallClockShardOptions options;
  options.shard_count = 2;
  options.barrier_tick = 2.0;  // far beyond the test's patience on purpose
  options.outbox_fill_threshold = 4;
  rt::WallClockShardSet shards(options);
  shards.Start();
  std::atomic<int> delivered{0};
  shards.runtime(0).Post([&shards, &delivered] {
    for (int i = 0; i < 4; ++i) {
      shards.PostTo(0, 1, shards.runtime(0).now(), [&delivered] {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  // Only the fill trigger can deliver these within the 2 s window.
  for (int spin = 0; spin < 2000 && delivered.load() < 4; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), 4);
  EXPECT_GE(shards.early_barriers(), 1u);
  shards.Stop();
}

TEST(WallClockShardSetTest, ThreadedRunAtBarrierSeesAllShardsParked) {
  rt::WallClockShardOptions options;
  options.shard_count = 4;
  options.barrier_tick = 0.001;
  rt::WallClockShardSet shards(options);
  shards.Start();
  // The control op runs on the barrier leader with every worker parked —
  // reading all four shard clocks here is the quiescent-read contract.
  double clocks = -1;
  shards.RunAtBarrier([&shards, &clocks] {
    clocks = 0;
    for (uint32_t s = 0; s < shards.shard_count(); ++s) {
      clocks += shards.runtime(s).now();
    }
  });
  EXPECT_GE(clocks, 0);
  shards.Stop();
}

// --- Sharded engine ----------------------------------------------------------

EngineOptions ShardedManualOptions(uint64_t seed, uint32_t shards) {
  EngineOptions options;
  options.mode = EngineMode::kWallClock;
  options.wallclock.manual_clock = true;
  options.wallclock.wheel_slots = 64;
  options.seed = seed;
  options.shards = shards;
  options.shard_barrier_tick = 0.005;
  options.query_timeout = 5.0;
  return options;
}

/// A population that puts work on every shard: one consumer per shard
/// (consumers go round-robin by id) and 3 providers per shard (contiguous
/// blocks), all mutually interested.
void BuildShardedPopulation(Engine* engine, uint32_t shards,
                            std::vector<model::ConsumerId>* consumers) {
  for (uint32_t s = 0; s < shards; ++s) {
    core::ConsumerParams consumer_params;
    consumer_params.n_results = 2;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    consumers->push_back(engine->AddConsumer(consumer_params));
  }
  const uint32_t provider_count = 3 * shards;
  for (uint32_t i = 0; i < provider_count; ++i) {
    core::ProviderParams provider_params;
    provider_params.capacity = 1.0 + 0.25 * (i % 4);
    const model::ProviderId p = engine->AddProvider(provider_params);
    for (model::ConsumerId c : *consumers) {
      engine->SetConsumerPreference(c, p, 0.6);
      engine->SetProviderPreference(p, c, 0.5);
    }
  }
}

struct ShardedRun {
  int64_t callbacks = 0;
  double satisfaction_sum = 0;
  EngineStats stats;
  std::vector<EngineShardStats> shard_stats;
};

ShardedRun RunManualShardedEngine(uint64_t seed, uint32_t shards,
                                  int queries) {
  Engine engine(ShardedManualOptions(seed, shards));
  std::vector<model::ConsumerId> consumers;
  BuildShardedPopulation(&engine, shards, &consumers);
  engine.Start();
  ShardedRun run;
  for (int i = 0; i < queries; ++i) {
    const model::ConsumerId consumer = consumers[i % consumers.size()];
    engine.Submit({consumer, 0, 2, 0.1}, [&run](const QueryResult& result) {
      ++run.callbacks;
      run.satisfaction_sum += result.satisfaction;
    });
    engine.RunFor(0.02);
  }
  EXPECT_TRUE(engine.WaitIdle(30.0));
  run.stats = engine.Stats();
  run.shard_stats = engine.ShardStats();
  return run;
}

TEST(EngineShardedTest, ManualShardedEngineServesEveryShard) {
  const ShardedRun run = RunManualShardedEngine(7, 4, 120);
  EXPECT_EQ(run.callbacks, 120);
  EXPECT_EQ(run.stats.queries_finalized, 120);
  EXPECT_EQ(run.stats.queries_in_flight, 0);
  EXPECT_GT(run.stats.shard_barriers, 0);
  // Outcome taxonomy is conserved across shards.
  EXPECT_EQ(run.stats.queries_satisfied + run.stats.queries_recovered +
                run.stats.queries_failed + run.stats.queries_unallocated +
                run.stats.queries_timed_out,
            run.stats.queries_finalized);
  // The round-robin workload reaches all four shards.
  ASSERT_EQ(run.shard_stats.size(), 4u);
  int64_t total_submitted = 0;
  for (const EngineShardStats& row : run.shard_stats) {
    EXPECT_GT(row.queries_submitted, 0) << "shard " << row.shard;
    total_submitted += row.queries_submitted;
    // One recurring timer per shard stays armed at idle: the mediator's
    // timeout-ring sweep. Anything beyond that would be a leaked query.
    EXPECT_LE(row.pending_timers, 1);
  }
  EXPECT_GE(total_submitted, 120);  // borrows may re-submit on a peer
}

TEST(EngineShardedTest, ManualShardedRunsAreReproducible) {
  const ShardedRun a = RunManualShardedEngine(21, 2, 80);
  const ShardedRun b = RunManualShardedEngine(21, 2, 80);
  EXPECT_EQ(a.callbacks, b.callbacks);
  EXPECT_EQ(a.satisfaction_sum, b.satisfaction_sum);
  EXPECT_EQ(a.stats.mean_response_time, b.stats.mean_response_time);
  EXPECT_EQ(a.stats.queries_satisfied, b.stats.queries_satisfied);
}

TEST(EngineShardedTest, ShardsOneIsTheClassicSingleRuntimeEngine) {
  // shards == 1 must not even build the shard fabric: identical options
  // except `shards` produce bit-equal runs through the classic path.
  EngineOptions classic = ShardedManualOptions(33, 1);
  EXPECT_EQ(classic.shards, 1u);
  Engine engine(std::move(classic));
  std::vector<model::ConsumerId> consumers;
  BuildShardedPopulation(&engine, 1, &consumers);
  engine.Start();
  int64_t callbacks = 0;
  for (int i = 0; i < 50; ++i) {
    engine.Submit({consumers[0], 0, 2, 0.1},
                  [&callbacks](const QueryResult&) { ++callbacks; });
    engine.RunFor(0.02);
  }
  EXPECT_TRUE(engine.WaitIdle(30.0));
  EXPECT_EQ(callbacks, 50);
  EXPECT_TRUE(engine.ShardStats().empty());  // no fabric, no shard rows
  EXPECT_EQ(engine.Stats().shard_barriers, 0);
}

TEST(EngineShardedTest, PostStartMembershipJoinsThroughTheEpochLog) {
  const uint32_t kShards = 2;
  Engine engine(ShardedManualOptions(5, kShards));
  std::vector<model::ConsumerId> consumers;
  BuildShardedPopulation(&engine, kShards, &consumers);
  engine.Start();
  const size_t base_providers = engine.Snapshot().providers.size();

  int64_t callbacks = 0;
  auto submit = [&engine, &callbacks](model::ConsumerId consumer) {
    engine.Submit({consumer, 0, 2, 0.1},
                  [&callbacks](const QueryResult&) { ++callbacks; });
  };
  // Traffic in flight while membership changes land.
  for (int i = 0; i < 20; ++i) {
    submit(consumers[i % consumers.size()]);
    engine.RunFor(0.01);
  }

  // Mid-traffic joins: a provider (through the epoch join log, applied at
  // a barrier) and a consumer, then preferences wiring the newcomers in.
  core::ProviderParams new_provider_params;
  new_provider_params.capacity = 2.0;
  const model::ProviderId new_provider = engine.AddProvider(new_provider_params);
  EXPECT_EQ(static_cast<size_t>(new_provider), base_providers);
  core::ConsumerParams new_consumer_params;
  new_consumer_params.n_results = 2;
  new_consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
  const model::ConsumerId new_consumer = engine.AddConsumer(new_consumer_params);
  engine.SetConsumerPreference(new_consumer, new_provider, 0.9);
  for (model::ConsumerId c : consumers) {
    engine.SetConsumerPreference(c, new_provider, 0.7);
  }
  engine.SetProviderPreference(new_provider, new_consumer, 0.8);
  const std::vector<model::ProviderId> existing = [&] {
    std::vector<model::ProviderId> ids;
    for (const ProviderSnapshot& p : engine.Snapshot().providers) {
      ids.push_back(p.id);
    }
    return ids;
  }();
  for (model::ProviderId p : existing) {
    engine.SetProviderPreference(p, new_consumer, 0.5);
  }

  // The newcomers serve and issue traffic.
  for (int i = 0; i < 20; ++i) {
    submit(new_consumer);
    engine.RunFor(0.01);
  }
  EXPECT_TRUE(engine.WaitIdle(30.0));

  // Nothing in flight was lost across the membership epochs.
  EXPECT_EQ(callbacks, 40);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_finalized, 40);
  EXPECT_EQ(stats.queries_in_flight, 0);
  const EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_EQ(snapshot.providers.size(), base_providers + 1);
  // The joined provider actually worked.
  EXPECT_GT(snapshot.providers.back().instances_performed, 0);
}

TEST(EngineShardedTest, ShardedSteadyStateSubmitPathIsAllocationFree) {
  // The acceptance gate, sharded flavour: submit -> hash-route -> mediate
  // -> (sometimes borrow cross-shard) -> outcome callback performs ZERO
  // heap allocations per query once the pools are warm — including after
  // membership churn (post-Start joins) re-shaped the population. Manual
  // clock: the measurement is single-threaded and exact.
  const uint32_t kShards = 2;
  Engine engine(ShardedManualOptions(42, kShards));
  std::vector<model::ConsumerId> consumers;
  BuildShardedPopulation(&engine, kShards, &consumers);
  engine.Start();
  int64_t callbacks = 0;
  auto pump = [&engine, &callbacks, &consumers](int queries) {
    for (int i = 0; i < queries; ++i) {
      const model::ConsumerId consumer = consumers[i % consumers.size()];
      engine.Submit({consumer, 0, 2, 0.1},
                    [&callbacks](const QueryResult&) { ++callbacks; });
      engine.RunFor(0.02);
    }
    (void)engine.WaitIdle(30.0);
  };

  pump(200);  // warm-up: pools reach their high-water marks

  // Membership churn: joins allocate (the population grows), but must not
  // disturb the per-query steady state that follows.
  for (int i = 0; i < 2; ++i) {
    core::ProviderParams params;
    params.capacity = 1.5;
    const model::ProviderId p = engine.AddProvider(params);
    for (model::ConsumerId c : consumers) {
      engine.SetConsumerPreference(c, p, 0.6);
      engine.SetProviderPreference(p, c, 0.5);
    }
  }

  pump(100);  // re-warm: the grown tables reach their new high-water marks

  const uint64_t before = AllocationCount();
  pump(150);
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "sharded Submit path must not allocate at steady state";
  EXPECT_EQ(callbacks, 450);
}

TEST(EngineShardedTest, DelegatedOutcomeReHomingIsAllocationFree) {
  // Borrow-path flavour of the gate: shard 1's providers only treat class
  // 1 while every query asks class 0, so each of its queries crosses the
  // mailbox twice — delegated out, outcome re-homed through the
  // performer's pooled slab slot — plus the slot-release hop back. The
  // whole round trip must perform ZERO heap allocations per query once
  // the slab, mailboxes and pools are warm.
  const uint32_t kShards = 2;
  Engine engine(ShardedManualOptions(11, kShards));
  std::vector<model::ConsumerId> consumers;
  for (uint32_t s = 0; s < kShards; ++s) {
    core::ConsumerParams consumer_params;
    consumer_params.n_results = 2;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    consumers.push_back(engine.AddConsumer(consumer_params));
  }
  // 3 providers per shard (contiguous id blocks). Shard 1's block is
  // class-restricted at AddProvider time: its pool for the class-0
  // traffic is dry from the first directory snapshot on.
  for (uint32_t i = 0; i < 3 * kShards; ++i) {
    core::ProviderParams provider_params;
    provider_params.capacity = 1.0 + 0.25 * (i % 4);
    if (i >= 3) provider_params.allowed_classes = {model::QueryClassId{1}};
    const model::ProviderId p = engine.AddProvider(provider_params);
    for (model::ConsumerId c : consumers) {
      engine.SetConsumerPreference(c, p, 0.6);
      engine.SetProviderPreference(p, c, 0.5);
    }
  }
  engine.Start();
  int64_t callbacks = 0;
  // Consumer 1 lives on shard 1 (consumers go round-robin by id): every
  // query below is mediated there and must borrow shard 0's providers.
  auto pump = [&engine, &callbacks, &consumers](int queries) {
    for (int i = 0; i < queries; ++i) {
      engine.Submit({consumers[1], 0, 2, 0.1},
                    [&callbacks](const QueryResult&) { ++callbacks; });
      engine.RunFor(0.02);
    }
    (void)engine.WaitIdle(30.0);
  };

  pump(150);  // warm-up: slab and mailboxes reach their high-water marks

  const EngineStats warm = engine.Stats();
  ASSERT_GT(warm.queries_delegated, 0);
  ASSERT_EQ(warm.queries_delegated, warm.queries_borrowed);

  const uint64_t before = AllocationCount();
  pump(100);
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "delegated outcome re-homing must not allocate at steady state";
  // Every measured query went over the mailbox: it is the borrow round
  // trip that was held to zero, not a local fallback.
  const EngineStats done = engine.Stats();
  EXPECT_EQ(done.queries_delegated - warm.queries_delegated, 100);
  EXPECT_EQ(callbacks, 250);
}

TEST(EngineShardedTest, ThreadedShardedEngineServesDriverTraffic) {
  // Real worker threads (the TSan target): driver-thread Submit fan-in,
  // cross-shard barriers, a mid-traffic membership join, Stats from a
  // foreign thread — then a clean drain.
  EngineOptions options;
  options.mode = EngineMode::kWallClock;
  options.seed = 9;
  options.shards = 2;
  options.shard_barrier_tick = 0.001;
  options.query_timeout = 5.0;
  Engine engine(std::move(options));
  std::vector<model::ConsumerId> consumers;
  BuildShardedPopulation(&engine, 2, &consumers);
  engine.Start();
  std::atomic<int64_t> callbacks{0};
  constexpr int kQueries = 300;
  std::thread driver([&engine, &callbacks, &consumers] {
    for (int i = 0; i < kQueries; ++i) {
      engine.Submit({consumers[i % consumers.size()], 0, 2, 0.001},
                    [&callbacks](const QueryResult&) {
                      callbacks.fetch_add(1, std::memory_order_relaxed);
                    });
      if (i % 50 == 49) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  // A membership join races the traffic (it lands at a barrier).
  core::ProviderParams params;
  params.capacity = 2.0;
  const model::ProviderId joined = engine.AddProvider(params);
  for (model::ConsumerId c : consumers) {
    engine.SetConsumerPreference(c, joined, 0.6);
  }
  const EngineStats mid = engine.Stats();  // foreign-thread barrier read
  EXPECT_GE(mid.queries_submitted, 0);
  driver.join();
  EXPECT_TRUE(engine.WaitIdle(10.0));
  EXPECT_EQ(callbacks.load(), kQueries);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_finalized, kQueries);
  EXPECT_EQ(stats.queries_in_flight, 0);
  EXPECT_GT(stats.shard_barriers, 0);
  const std::vector<EngineShardStats> rows = engine.ShardStats();
  ASSERT_EQ(rows.size(), 2u);
  engine.Stop();
}

}  // namespace
}  // namespace sbqa
