// Failure-injection stress test: the messiest supported configuration —
// dissatisfaction departures, availability churn, runtime joins, malicious
// hosts, bursty arrivals — across allocation methods and seeds, with an
// observer validating protocol invariants on every single outcome.

#include <set>

#include <gtest/gtest.h>

#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"

namespace sbqa::experiments {
namespace {

/// Checks every mediation and outcome for protocol invariants.
class InvariantObserver : public core::MediationObserver {
 public:
  /// Enables the candidate-index consistency check (the registry must
  /// outlive the observer).
  void set_registry(const core::Registry* registry) { registry_ = registry; }

  void OnMediation(const model::Query& query,
                   const core::AllocationDecision& decision,
                   double now) override {
    ++mediations_;
    ASSERT_GE(now, query.issued_at);
    // The incrementally maintained candidate index must agree with a
    // brute-force population scan at every single mediation, no matter how
    // much churn/departure/join traffic preceded it — and the selected
    // providers must be eligible right now.
    if (registry_ != nullptr) {
      const core::CandidateIndex& index = registry_->candidate_index();
      size_t eligible = 0;
      for (const core::Provider& p : registry_->providers()) {
        const bool expect = p.alive() && p.CanTreat(query.query_class);
        eligible += expect ? 1u : 0u;
        ASSERT_EQ(index.ContainsFor(query.query_class, p.id()), expect)
            << "provider " << p.id() << " class " << query.query_class;
      }
      ASSERT_EQ(index.CountFor(query.query_class), eligible);
      ASSERT_EQ(registry_->alive_provider_count(), [this] {
        size_t n = 0;
        for (const core::Provider& p : registry_->providers()) {
          if (p.alive()) ++n;
        }
        return n;
      }());
      for (model::ProviderId p : decision.selected) {
        ASSERT_TRUE(index.ContainsFor(query.query_class, p));
      }
    }
    // Selected is unique and within the consulted set (when one is given).
    std::set<model::ProviderId> selected(decision.selected.begin(),
                                         decision.selected.end());
    ASSERT_EQ(selected.size(), decision.selected.size());
    ASSERT_LE(decision.selected.size(),
              static_cast<size_t>(query.n_results));
    if (!decision.consulted.empty()) {
      const std::set<model::ProviderId> consulted(decision.consulted.begin(),
                                                  decision.consulted.end());
      for (model::ProviderId p : decision.selected) {
        ASSERT_TRUE(consulted.contains(p));
      }
    }
    for (double v : decision.provider_intentions) {
      ASSERT_GE(v, -1.0);
      ASSERT_LE(v, 1.0);
    }
    for (double v : decision.consumer_intentions) {
      ASSERT_GE(v, -1.0);
      ASSERT_LE(v, 1.0);
    }
  }

  void OnQueryCompleted(const core::QueryOutcome& outcome) override {
    ++completions_;
    ASSERT_GE(outcome.response_time, 0.0);
    ASSERT_GE(outcome.completed_at, outcome.query.issued_at);
    ASSERT_GE(outcome.satisfaction, 0.0);
    ASSERT_LE(outcome.satisfaction, 1.0);
    ASSERT_GE(outcome.adequation, 0.0);
    ASSERT_LE(outcome.adequation, 1.0);
    ASSERT_GE(outcome.allocation_satisfaction, 0.0);
    ASSERT_LE(outcome.allocation_satisfaction, 1.0);
    ASSERT_EQ(outcome.results_received,
              static_cast<int>(outcome.performers.size()));
    ASSERT_LE(outcome.valid_results, outcome.results_received);
    ASSERT_LE(outcome.results_received, outcome.results_required);
    const std::set<model::ProviderId> performers(outcome.performers.begin(),
                                                 outcome.performers.end());
    ASSERT_EQ(performers.size(), outcome.performers.size());
    if (outcome.unallocated) {
      ASSERT_EQ(outcome.results_received, 0);
      ASSERT_EQ(outcome.satisfaction, 0.0);
    }
  }

  int64_t mediations() const { return mediations_; }
  int64_t completions() const { return completions_; }

 private:
  const core::Registry* registry_ = nullptr;
  int64_t mediations_ = 0;
  int64_t completions_ = 0;
};

ScenarioConfig ChaosConfig(uint64_t seed, MethodSpec method) {
  ScenarioConfig config = WithAutonomousEnvironment(
      BaseDemoConfig(seed, /*volunteers=*/60, /*duration=*/300.0));
  config.method = std::move(method);
  config.departure.grace_period = 80.0;
  config.churn.enabled = true;
  config.churn.mean_online = 90.0;
  config.churn.mean_offline = 25.0;
  config.churn.initial_online_fraction = 0.8;
  config.joins.enabled = true;
  config.joins.rate = 0.1;
  config.joins.max_joins = 60;
  config.population.volunteers.malicious_fraction = 0.15;
  config.population.volunteers.error_rate = 0.5;
  return config;
}

void RunChaos(uint64_t seed, MethodSpec method) {
  InvariantObserver invariants;
  ScenarioConfig config = ChaosConfig(seed, std::move(method));
  config.observers.push_back(&invariants);
  // Hand the observer the live registry so every mediation cross-checks the
  // candidate index against a brute-force scan.
  config.population_hook = [&invariants](core::Registry* registry,
                                         const boinc::BuiltPopulation&,
                                         util::Rng*) {
    invariants.set_registry(registry);
  };
  const RunResult result = RunScenario(config);

  // Nothing is ever lost: every submitted query is finalized exactly once.
  EXPECT_EQ(result.summary.queries_finalized,
            result.summary.queries_submitted);
  EXPECT_EQ(invariants.completions(), result.summary.queries_finalized);
  // A mediation happened for every query that found a non-empty Pq.
  EXPECT_LE(invariants.mediations(), result.summary.queries_submitted);
  EXPECT_GT(invariants.completions(), 0);
  // All summary quantities bounded.
  EXPECT_GE(result.summary.fully_served_fraction, 0.0);
  EXPECT_LE(result.summary.fully_served_fraction, 1.0);
  EXPECT_GE(result.summary.validated_fraction, 0.0);
  EXPECT_LE(result.summary.validated_fraction, 1.0);
  // Per-provider final-state sanity.
  for (const auto& p : result.providers) {
    EXPECT_GE(p.satisfaction, 0.0);
    EXPECT_LE(p.satisfaction, 1.0);
    EXPECT_GE(p.performed, 0);
    EXPECT_GE(p.busy_fraction, 0.0);
    EXPECT_LE(p.busy_fraction, 1.0 + 1e-9);
  }
}

class ChaosSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ChaosSweep, InvariantsHoldUnderChaos) {
  const auto [seed, method_index] = GetParam();
  std::vector<MethodSpec> methods = {
      MethodSpec::Sbqa(DefaultSbqaParams()), MethodSpec::Capacity(),
      MethodSpec::Economic(), MethodSpec::Qlb(), MethodSpec::Random()};
  RunChaos(seed, methods[static_cast<size_t>(method_index)]);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMethods, ChaosSweep,
    ::testing::Combine(::testing::Values<uint64_t>(1, 7, 42, 1234),
                       ::testing::Range(0, 5)));

TEST(ChaosDeterminismTest, ChaoticRunsAreStillReproducible) {
  InvariantObserver obs1, obs2;
  ScenarioConfig c1 = ChaosConfig(99, MethodSpec::Sbqa(DefaultSbqaParams()));
  c1.observers.push_back(&obs1);
  ScenarioConfig c2 = ChaosConfig(99, MethodSpec::Sbqa(DefaultSbqaParams()));
  c2.observers.push_back(&obs2);
  const RunResult a = RunScenario(c1);
  const RunResult b = RunScenario(c2);
  EXPECT_EQ(a.summary.queries_finalized, b.summary.queries_finalized);
  EXPECT_EQ(a.summary.provider_departures, b.summary.provider_departures);
  EXPECT_EQ(a.summary.provider_offline_events,
            b.summary.provider_offline_events);
  EXPECT_EQ(a.summary.provider_joins, b.summary.provider_joins);
  EXPECT_DOUBLE_EQ(a.summary.mean_response_time, b.summary.mean_response_time);
  EXPECT_DOUBLE_EQ(a.summary.consumer_satisfaction,
                   b.summary.consumer_satisfaction);
  EXPECT_EQ(obs1.mediations(), obs2.mediations());
}

}  // namespace
}  // namespace sbqa::experiments
