// Tests for the KnBest two-step provider selection.

#include "core/knbest.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sbqa::core {
namespace {

std::vector<model::ProviderId> Ids(int n) {
  std::vector<model::ProviderId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(i);
  return ids;
}

TEST(SelectKnBestTest, EmptyCandidatesGiveEmptyResult) {
  util::Rng rng(1);
  EXPECT_TRUE(SelectKnBest({}, {}, KnBestParams{5, 2}, rng).empty());
}

TEST(SelectKnBestTest, ReturnsAtMostKnProviders) {
  util::Rng rng(2);
  const auto ids = Ids(20);
  const std::vector<double> backlogs(20, 0.0);
  const auto kn = SelectKnBest(ids, backlogs, KnBestParams{10, 4}, rng);
  EXPECT_EQ(kn.size(), 4u);
}

TEST(SelectKnBestTest, ResultIsSubsetOfCandidatesWithoutDuplicates) {
  util::Rng rng(3);
  const auto ids = Ids(30);
  std::vector<double> backlogs;
  for (int i = 0; i < 30; ++i) backlogs.push_back(i * 0.1);
  for (int round = 0; round < 100; ++round) {
    const auto kn = SelectKnBest(ids, backlogs, KnBestParams{12, 5}, rng);
    std::set<model::ProviderId> unique(kn.begin(), kn.end());
    EXPECT_EQ(unique.size(), kn.size());
    for (model::ProviderId id : kn) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, 30);
    }
  }
}

TEST(SelectKnBestTest, KeepsLeastUtilizedOfTheSample) {
  util::Rng rng(4);
  // k = all candidates (sampling disabled) -> Kn must be the global
  // least-utilized set.
  const auto ids = Ids(10);
  std::vector<double> backlogs{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  const auto kn = SelectKnBest(ids, backlogs, KnBestParams{0, 3}, rng);
  const std::set<model::ProviderId> got(kn.begin(), kn.end());
  EXPECT_EQ(got, (std::set<model::ProviderId>{7, 8, 9}));
}

TEST(SelectKnBestTest, ResultOrderedByAscendingBacklog) {
  util::Rng rng(5);
  const auto ids = Ids(10);
  std::vector<double> backlogs{5, 3, 8, 1, 9, 2, 7, 4, 6, 0};
  const auto kn = SelectKnBest(ids, backlogs, KnBestParams{0, 5}, rng);
  for (size_t i = 1; i < kn.size(); ++i) {
    EXPECT_LE(backlogs[static_cast<size_t>(kn[i - 1])],
              backlogs[static_cast<size_t>(kn[i])]);
  }
}

TEST(SelectKnBestTest, KnZeroKeepsWholeSample) {
  util::Rng rng(6);
  const auto ids = Ids(10);
  const std::vector<double> backlogs(10, 1.0);
  const auto kn = SelectKnBest(ids, backlogs, KnBestParams{4, 0}, rng);
  EXPECT_EQ(kn.size(), 4u);
}

TEST(SelectKnBestTest, BothZeroReturnsEveryoneShuffled) {
  util::Rng rng(7);
  const auto ids = Ids(10);
  const std::vector<double> backlogs(10, 1.0);
  const auto kn = SelectKnBest(ids, backlogs, KnBestParams{0, 0}, rng);
  EXPECT_EQ(kn.size(), 10u);
}

TEST(SelectKnBestTest, KLargerThanPopulationIsFine) {
  util::Rng rng(8);
  const auto ids = Ids(3);
  const std::vector<double> backlogs{1, 2, 3};
  const auto kn = SelectKnBest(ids, backlogs, KnBestParams{50, 2}, rng);
  EXPECT_EQ(kn.size(), 2u);
}

TEST(SelectKnBestTest, RandomSampleCoversThePopulation) {
  // With k = 2 of 10 and all-equal backlogs, every provider should be
  // selected sometimes: the random phase prevents herd behaviour.
  util::Rng rng(9);
  const auto ids = Ids(10);
  const std::vector<double> backlogs(10, 0.0);
  std::map<model::ProviderId, int> counts;
  for (int round = 0; round < 3000; ++round) {
    for (model::ProviderId id :
         SelectKnBest(ids, backlogs, KnBestParams{2, 1}, rng)) {
      ++counts[id];
    }
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count, 300, 100);  // roughly uniform
  }
}

TEST(SelectKnBestTest, LoadFilterPrefersIdleProviders) {
  // Provider 0 is idle, the rest are heavily loaded; with k = population,
  // provider 0 must always be first.
  util::Rng rng(10);
  const auto ids = Ids(5);
  const std::vector<double> backlogs{0.0, 50, 50, 50, 50};
  for (int round = 0; round < 50; ++round) {
    const auto kn = SelectKnBest(ids, backlogs, KnBestParams{0, 2}, rng);
    EXPECT_EQ(kn.front(), 0);
  }
}

TEST(SelectKnBestTest, TieBreakingIsNotIdBiased) {
  // All backlogs equal: the first slot should not systematically favor the
  // lowest id.
  util::Rng rng(11);
  const auto ids = Ids(8);
  const std::vector<double> backlogs(8, 2.0);
  int id0_first = 0;
  const int rounds = 4000;
  for (int round = 0; round < rounds; ++round) {
    const auto kn = SelectKnBest(ids, backlogs, KnBestParams{0, 3}, rng);
    if (kn.front() == 0) ++id0_first;
  }
  EXPECT_NEAR(static_cast<double>(id0_first) / rounds, 1.0 / 8, 0.03);
}

TEST(KnBestMethodTest, GreedyVariantNameDiffers) {
  KnBestMethod random_method(KnBestParams{10, 4, false});
  KnBestMethod greedy_method(KnBestParams{10, 4, true});
  EXPECT_EQ(random_method.name(), "KnBest");
  EXPECT_EQ(greedy_method.name(), "KnBest-greedy");
}

TEST(SelectKnBestDeathTest, MismatchedBacklogsAbort) {
  util::Rng rng(12);
  EXPECT_DEATH(
      SelectKnBest(Ids(3), {1.0}, KnBestParams{2, 1}, rng),
      "CHECK failed");
}

// Property sweep over (k, kn) combinations.
class KnBestParamSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(KnBestParamSweep, SizeInvariants) {
  const auto [k, kn] = GetParam();
  util::Rng rng(k * 100 + kn);
  const auto ids = Ids(25);
  std::vector<double> backlogs;
  for (int i = 0; i < 25; ++i) backlogs.push_back(rng.Uniform(0, 10));
  const auto result =
      SelectKnBest(ids, backlogs, KnBestParams{k, kn}, rng);

  const size_t k_effective = (k == 0 || k > 25) ? 25 : k;
  const size_t kn_effective =
      (kn == 0 || kn > k_effective) ? k_effective : kn;
  EXPECT_EQ(result.size(), kn_effective);
  // Ordered by backlog.
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(backlogs[static_cast<size_t>(result[i - 1])],
              backlogs[static_cast<size_t>(result[i])]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, KnBestParamSweep,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 5, 10, 25, 100),
                       ::testing::Values<size_t>(0, 1, 3, 10, 40)));

}  // namespace
}  // namespace sbqa::core
