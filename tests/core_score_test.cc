// Tests for Definition 3 (provider score) and Equation 2 (adaptive omega).

#include "core/score.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sbqa::core {
namespace {

// --- Definition 3 -------------------------------------------------------------

TEST(ScoreTest, PositiveBranchGeometricMean) {
  // omega = 0.5: score = sqrt(PI * CI).
  EXPECT_NEAR(ProviderScore(0.25, 1.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(ProviderScore(0.5, 0.5, 0.5), 0.5, 1e-12);
}

TEST(ScoreTest, OmegaOneUsesProviderOnly) {
  EXPECT_NEAR(ProviderScore(0.7, 0.2, 1.0), 0.7, 1e-12);
}

TEST(ScoreTest, OmegaZeroUsesConsumerOnly) {
  EXPECT_NEAR(ProviderScore(0.7, 0.2, 0.0), 0.2, 1e-12);
}

TEST(ScoreTest, NegativeBranchWhenProviderUnwilling) {
  // PI <= 0 lands in the negative branch regardless of CI.
  EXPECT_LT(ProviderScore(-0.5, 0.9, 0.5), 0.0);
  EXPECT_LT(ProviderScore(0.0, 0.9, 0.5), 0.0);
}

TEST(ScoreTest, NegativeBranchWhenConsumerUnwilling) {
  EXPECT_LT(ProviderScore(0.9, -0.5, 0.5), 0.0);
  EXPECT_LT(ProviderScore(0.9, 0.0, 0.5), 0.0);
}

TEST(ScoreTest, NegativeBranchExactValue) {
  // PI = -1, CI = -1, omega = 0.5, eps = 1:
  // -( (1+1+1)^0.5 * (1+1+1)^0.5 ) = -3.
  EXPECT_NEAR(ProviderScore(-1.0, -1.0, 0.5, 1.0), -3.0, 1e-12);
}

TEST(ScoreTest, AnyPositivePairBeatsAnyNegativePair) {
  // The smallest positive-branch score is still greater than the largest
  // negative-branch score (which is at most -(eps^1) < 0).
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double omega = rng.NextDouble();
    const double pos = ProviderScore(rng.Uniform(1e-6, 1),
                                     rng.Uniform(1e-6, 1), omega);
    const double neg = ProviderScore(rng.Uniform(-1, 0),
                                     rng.Uniform(-1, 1), omega);
    ASSERT_GT(pos, neg);
  }
}

TEST(ScoreTest, MonotoneInProviderIntentionOnPositiveBranch) {
  double prev = 0;
  for (double pi = 0.1; pi <= 1.0001; pi += 0.1) {
    const double s = ProviderScore(pi, 0.5, 0.6);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(ScoreTest, MonotoneInConsumerIntentionOnNegativeBranch) {
  // Less hostile consumer intention -> less negative score.
  double prev = -1e9;
  for (double ci = -1.0; ci <= 0.0001; ci += 0.1) {
    const double s = ProviderScore(-0.5, ci, 0.5);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(ScoreTest, EpsilonKeepsNegativeBranchAwayFromZero) {
  // With intention = 1 on one side, the (1 - PI) term vanishes; epsilon
  // keeps the magnitude strictly positive.
  const double s = ProviderScore(1.0, -0.5, 0.5, 0.01);
  EXPECT_LT(s, 0.0);
  EXPECT_GT(std::abs(s), 0.0);
}

TEST(ScoreTest, EpsilonScalesNegativeBranchMagnitude) {
  const double small = std::abs(ProviderScore(-0.5, -0.5, 0.5, 0.1));
  const double large = std::abs(ProviderScore(-0.5, -0.5, 0.5, 1.0));
  EXPECT_LT(small, large);
}

TEST(ScoreTest, InputsClampedToSignedUnitRange) {
  EXPECT_NEAR(ProviderScore(5.0, 5.0, 0.5), ProviderScore(1.0, 1.0, 0.5),
              1e-12);
}

TEST(ScoreDeathTest, NonPositiveEpsilonAborts) {
  EXPECT_DEATH(ProviderScore(0.5, 0.5, 0.5, 0.0), "CHECK failed");
}

// --- Equation 2 -----------------------------------------------------------------

TEST(AdaptiveOmegaTest, EqualSatisfactionsGiveHalf) {
  EXPECT_DOUBLE_EQ(AdaptiveOmega(0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(AdaptiveOmega(0.0, 0.0), 0.5);
}

TEST(AdaptiveOmegaTest, SatisfiedConsumerShiftsWeightToProvider) {
  // Consumer satisfied, provider not: omega -> 1 (provider's intention
  // dominates the score).
  EXPECT_DOUBLE_EQ(AdaptiveOmega(1.0, 0.0), 1.0);
  EXPECT_GT(AdaptiveOmega(0.8, 0.3), 0.5);
}

TEST(AdaptiveOmegaTest, SatisfiedProviderShiftsWeightToConsumer) {
  EXPECT_DOUBLE_EQ(AdaptiveOmega(0.0, 1.0), 0.0);
  EXPECT_LT(AdaptiveOmega(0.3, 0.8), 0.5);
}

TEST(AdaptiveOmegaTest, ExactFormula) {
  // ((0.6 - 0.2) + 1)/2 = 0.7.
  EXPECT_DOUBLE_EQ(AdaptiveOmega(0.6, 0.2), 0.7);
}

TEST(AdaptiveOmegaTest, ClampsPathologicalInputs) {
  EXPECT_EQ(AdaptiveOmega(2.0, 0.0), 1.0);
  EXPECT_EQ(AdaptiveOmega(0.0, 2.0), 0.0);
}

TEST(AdaptiveOmegaTest, AlwaysInUnitInterval) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double omega = AdaptiveOmega(rng.NextDouble(), rng.NextDouble());
    ASSERT_GE(omega, 0.0);
    ASSERT_LE(omega, 1.0);
  }
}

// --- Ranking --------------------------------------------------------------------

TEST(RankTest, SortsByScoreDescending) {
  std::vector<ScoredProvider> scored(3);
  scored[0] = {.provider = 1, .score = 0.2};
  scored[1] = {.provider = 2, .score = 0.9};
  scored[2] = {.provider = 3, .score = -1.5};
  RankByScore(&scored);
  EXPECT_EQ(scored[0].provider, 2);
  EXPECT_EQ(scored[1].provider, 1);
  EXPECT_EQ(scored[2].provider, 3);
}

TEST(RankTest, TiesBrokenByProviderId) {
  std::vector<ScoredProvider> scored(3);
  scored[0] = {.provider = 9, .score = 0.5};
  scored[1] = {.provider = 2, .score = 0.5};
  scored[2] = {.provider = 5, .score = 0.5};
  RankByScore(&scored);
  EXPECT_EQ(scored[0].provider, 2);
  EXPECT_EQ(scored[1].provider, 5);
  EXPECT_EQ(scored[2].provider, 9);
}

// Property sweep: the ranking induced by Definition 3 at a fixed omega is
// consistent with dominance — improving both intentions never drops rank.
class ScoreDominanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScoreDominanceSweep, DominanceRespected) {
  const double omega = GetParam();
  util::Rng rng(static_cast<uint64_t>(omega * 1000) + 17);
  for (int i = 0; i < 2000; ++i) {
    const double pi = rng.Uniform(-1, 1);
    const double ci = rng.Uniform(-1, 1);
    double dpi = rng.Uniform(0, 1.0 - pi < 0 ? 0 : 1.0 - pi);
    double dci = rng.Uniform(0, 1.0 - ci < 0 ? 0 : 1.0 - ci);
    const double base = ProviderScore(pi, ci, omega);
    const double better = ProviderScore(pi + dpi, ci + dci, omega);
    ASSERT_GE(better, base - 1e-12)
        << "pi=" << pi << " ci=" << ci << " dpi=" << dpi << " dci=" << dci;
  }
}

INSTANTIATE_TEST_SUITE_P(Omegas, ScoreDominanceSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace sbqa::core
