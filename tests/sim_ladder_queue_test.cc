// Differential tests of the unified timer core's two queue kinds — the
// acceptance gate of the ladder-queue tentpole:
//
//   1. raw structures: LadderQueue and TimerCore::EventHeap pop the exact
//      same (when, key) sequence under fuzzed workload shapes (uniform
//      horizons, bimodal short/long timers like the serving path's
//      completion + timeout mix, heavy same-timestamp ties, burst/drain
//      cycles);
//   2. TimerCore: identical Schedule/Cancel/PopDue sequences fire the
//      same callbacks at the same times under both kinds, including lazy
//      cancellation and slot reuse;
//   3. sim::Scheduler: fuzzed Schedule/ScheduleAt/Cancel/RunUntil traces
//      are identical, including callbacks that reschedule;
//   4. golden-seed scenarios: full sharded demo runs under
//      scheduler_kind = kHeap vs kLadder produce bit-identical summaries
//      at every shard count.
//
// Everything is seeded (util::Rng) — a failure reproduces exactly.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "sim/scheduler.h"
#include "util/ladder_queue.h"
#include "util/rng.h"
#include "util/timer_core.h"

namespace sbqa {
namespace {

using util::LadderQueue;
using util::TimerCore;
using util::TimerQueueKind;

// ---------------------------------------------------------------------------
// 1. Raw structures: LadderQueue vs the 4-ary EventHeap.
// ---------------------------------------------------------------------------

/// Drives both raw structures through the same scheduler-shaped workload
/// (pushes never travel into the past) and asserts bit-identical pop
/// sequences. `next_delay(rng)` shapes the horizon distribution.
template <typename DelayFn>
void RawDifferential(uint64_t seed, int rounds, DelayFn&& next_delay) {
  LadderQueue ladder;
  TimerCore::EventHeap heap;
  util::Rng rng(seed);
  uint64_t key = 1;
  double now = 0;
  size_t pending = 0;

  for (int round = 0; round < rounds; ++round) {
    const int pushes = static_cast<int>(rng.Next() % 97);
    for (int i = 0; i < pushes; ++i) {
      const double when = now + next_delay(rng);
      ladder.Push(when, key);
      heap.push(LadderQueue::Entry{when, key});
      ++key;
      ++pending;
    }
    // Drain a random fraction; every few rounds drain fully so deep rungs
    // and the Top transfer both get exercised.
    size_t pops = round % 7 == 6 ? pending : rng.Next() % (pending + 1);
    for (; pops > 0; --pops) {
      const LadderQueue::Entry* front = ladder.Front();
      ASSERT_NE(front, nullptr);
      ASSERT_FALSE(heap.empty());
      const LadderQueue::Entry expect = heap.top();
      ASSERT_EQ(std::bit_cast<uint64_t>(front->when),
                std::bit_cast<uint64_t>(expect.when));
      ASSERT_EQ(front->key, expect.key);
      ASSERT_GE(front->when, now);  // pop order is monotone
      now = front->when;
      ladder.PopFront();
      heap.pop();
      --pending;
    }
    ASSERT_EQ(ladder.size(), pending);
    ASSERT_EQ(heap.size(), pending);
  }
}

TEST(LadderQueueDifferentialTest, UniformHorizons) {
  RawDifferential(/*seed=*/1, /*rounds=*/400,
                  [](util::Rng& rng) { return rng.Uniform(0.0, 10.0); });
}

TEST(LadderQueueDifferentialTest, BimodalServeMix) {
  // The wall-clock serving shape: mostly sub-millisecond completions with
  // a tail of quarter-second timeouts — exactly the distribution that
  // clusters entries into narrow bucket spans.
  RawDifferential(/*seed=*/2, /*rounds=*/400, [](util::Rng& rng) {
    return rng.Bernoulli(0.9) ? rng.Uniform(0.0, 0.001) : 0.25;
  });
}

TEST(LadderQueueDifferentialTest, HeavyTimestampTies) {
  // Quantized delays produce many exact-duplicate whens: order inside a
  // tie must come from the key alone, under both kinds.
  RawDifferential(/*seed=*/3, /*rounds=*/400, [](util::Rng& rng) {
    return 0.001 * static_cast<double>(rng.Next() % 8);
  });
}

TEST(LadderQueueDifferentialTest, ExponentialBursts) {
  RawDifferential(/*seed=*/4, /*rounds=*/400,
                  [](util::Rng& rng) { return rng.Exponential(50.0); });
}

TEST(LadderQueueDifferentialTest, ReserveDoesNotChangeOrder) {
  LadderQueue plain;
  LadderQueue reserved;
  reserved.Reserve(4096);
  util::Rng rng(5);
  uint64_t key = 1;
  for (int i = 0; i < 5000; ++i) {
    const double when = rng.Uniform(0.0, 100.0);
    plain.Push(when, key);
    reserved.Push(when, key);
    ++key;
  }
  while (const LadderQueue::Entry* a = plain.Front()) {
    const LadderQueue::Entry* b = reserved.Front();
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->key, b->key);
    ASSERT_EQ(std::bit_cast<uint64_t>(a->when),
              std::bit_cast<uint64_t>(b->when));
    plain.PopFront();
    reserved.PopFront();
  }
  EXPECT_TRUE(reserved.empty());
}

// ---------------------------------------------------------------------------
// 2. TimerCore: identical op sequences under both kinds.
// ---------------------------------------------------------------------------

TEST(TimerCoreDifferentialTest, ScheduleCancelPopDue) {
  TimerCore ladder(TimerQueueKind::kLadder);
  TimerCore heap(TimerQueueKind::kHeap);
  util::Rng rng(11);

  std::vector<uint64_t> ladder_fired;
  std::vector<uint64_t> heap_fired;
  // Parallel handle lists: index i in both vectors is the same logical
  // timer, so one cancellation decision applies to both cores.
  std::vector<TimerCore::Handle> ladder_handles;
  std::vector<TimerCore::Handle> heap_handles;

  double now = 0;
  uint64_t next_id = 1;
  for (int round = 0; round < 300; ++round) {
    const int schedules = static_cast<int>(rng.Next() % 23);
    for (int i = 0; i < schedules; ++i) {
      const double when =
          now + (rng.Bernoulli(0.8) ? rng.Uniform(0.0, 0.01) : 0.5);
      const uint64_t id = next_id++;
      ladder_handles.push_back(
          ladder.Schedule(when, [&ladder_fired, id] {
            ladder_fired.push_back(id);
          }));
      heap_handles.push_back(heap.Schedule(when, [&heap_fired, id] {
        heap_fired.push_back(id);
      }));
    }
    // Cancel a random sample (some already fired — both cores must agree
    // the handle is stale).
    const int cancels = static_cast<int>(rng.Next() % 5);
    for (int i = 0; i < cancels && !ladder_handles.empty(); ++i) {
      const size_t pick = rng.Next() % ladder_handles.size();
      ASSERT_EQ(ladder.Cancel(ladder_handles[pick]),
                heap.Cancel(heap_handles[pick]));
    }
    now += rng.Uniform(0.0, 0.02);
    util::EventFn fn;
    double lw = 0;
    double hw = 0;
    while (ladder.PopDue(now, &fn, &lw)) {
      fn();
      util::EventFn hfn;
      ASSERT_TRUE(heap.PopDue(now, &hfn, &hw));
      hfn();
      ASSERT_EQ(std::bit_cast<uint64_t>(lw), std::bit_cast<uint64_t>(hw));
    }
    ASSERT_FALSE(heap.PopDue(now, &fn, &hw));
    ASSERT_EQ(ladder.pending(), heap.pending());
  }
  EXPECT_EQ(ladder_fired, heap_fired);
  EXPECT_GT(ladder_fired.size(), 1000u);
}

// ---------------------------------------------------------------------------
// 3. sim::Scheduler: fuzzed traces, including rescheduling callbacks.
// ---------------------------------------------------------------------------

/// One scheduler under fuzz: records (id, fire time) pairs; every k-th
/// callback chains a follow-up event from a pre-generated delay table so
/// both kinds replay the identical self-scheduling pattern.
struct FuzzDriver {
  explicit FuzzDriver(sim::SchedulerKind kind) : scheduler(kind) {}

  void Chain(uint64_t id, const std::vector<double>* delays) {
    fired.push_back(id);
    times.push_back(scheduler.now());
    if (id % 5 == 0 && chain_cursor < delays->size()) {
      const double delay = (*delays)[chain_cursor++];
      const uint64_t child = id * 1000003u;
      scheduler.Schedule(delay, [this, child, delays] {
        Chain(child, delays);
      });
    }
  }

  sim::Scheduler scheduler;
  std::vector<uint64_t> fired;
  std::vector<double> times;
  size_t chain_cursor = 0;
};

TEST(SchedulerDifferentialTest, FuzzedTracesMatch) {
  FuzzDriver ladder(sim::SchedulerKind::kLadder);
  FuzzDriver heap(sim::SchedulerKind::kHeap);
  ASSERT_EQ(ladder.scheduler.kind(), sim::SchedulerKind::kLadder);
  ASSERT_EQ(heap.scheduler.kind(), sim::SchedulerKind::kHeap);

  util::Rng rng(17);
  std::vector<double> chain_delays;
  for (int i = 0; i < 4096; ++i) {
    chain_delays.push_back(rng.Uniform(0.0, 0.05));
  }

  std::vector<sim::EventId> ladder_ids;
  std::vector<sim::EventId> heap_ids;
  uint64_t next_id = 1;
  for (int round = 0; round < 200; ++round) {
    const int schedules = static_cast<int>(rng.Next() % 17);
    for (int i = 0; i < schedules; ++i) {
      const double delay = rng.Bernoulli(0.25)
                               ? 0.0  // zero-delay chains tie-break on seq
                               : rng.Uniform(0.0, 0.1);
      const uint64_t id = next_id++;
      ladder_ids.push_back(ladder.scheduler.Schedule(
          delay, [&ladder, id, &chain_delays] {
            ladder.Chain(id, &chain_delays);
          }));
      heap_ids.push_back(heap.scheduler.Schedule(
          delay, [&heap, id, &chain_delays] {
            heap.Chain(id, &chain_delays);
          }));
    }
    if (!ladder_ids.empty() && rng.Bernoulli(0.3)) {
      const size_t pick = rng.Next() % ladder_ids.size();
      ASSERT_EQ(ladder.scheduler.Cancel(ladder_ids[pick]),
                heap.scheduler.Cancel(heap_ids[pick]));
    }
    const double horizon = ladder.scheduler.now() + rng.Uniform(0.0, 0.05);
    const size_t lruns = ladder.scheduler.RunUntil(horizon);
    const size_t hruns = heap.scheduler.RunUntil(horizon);
    ASSERT_EQ(lruns, hruns);
    ASSERT_EQ(std::bit_cast<uint64_t>(ladder.scheduler.now()),
              std::bit_cast<uint64_t>(heap.scheduler.now()));
  }
  // Drain everything that is still pending.
  ladder.scheduler.Run();
  heap.scheduler.Run();
  EXPECT_EQ(ladder.fired, heap.fired);
  ASSERT_EQ(ladder.times.size(), heap.times.size());
  for (size_t i = 0; i < ladder.times.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(ladder.times[i]),
              std::bit_cast<uint64_t>(heap.times[i]));
  }
  EXPECT_GT(ladder.fired.size(), 500u);
  EXPECT_EQ(ladder.scheduler.executed(), heap.scheduler.executed());
}

// ---------------------------------------------------------------------------
// 4. Golden-seed scenarios: full sharded runs, heap vs ladder.
// ---------------------------------------------------------------------------

TEST(SchedulerDifferentialTest, GoldenSeedScenarioSummariesMatch) {
  for (const uint32_t shards : {1u, 2u, 4u}) {
    auto config_for = [&](sim::SchedulerKind kind) {
      experiments::ScenarioConfig config = experiments::BaseDemoConfig(
          /*seed=*/42, /*volunteers=*/120, /*duration=*/90.0);
      config.sim.shard_count = shards;
      config.sim.shard_use_threads = shards > 1;
      config.sim.scheduler_kind = kind;
      return config;
    };
    const experiments::RunResult ladder = experiments::RunShardedScenario(
        config_for(sim::SchedulerKind::kLadder));
    const experiments::RunResult heap = experiments::RunShardedScenario(
        config_for(sim::SchedulerKind::kHeap));

    const metrics::RunSummary& a = ladder.summary;
    const metrics::RunSummary& b = heap.summary;
    EXPECT_EQ(a.queries_submitted, b.queries_submitted) << shards;
    EXPECT_EQ(a.queries_finalized, b.queries_finalized) << shards;
    EXPECT_EQ(a.queries_fully_served, b.queries_fully_served) << shards;
    EXPECT_EQ(a.queries_timed_out, b.queries_timed_out) << shards;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << shards;
    // Bit-identical accumulation, not just statistical agreement: the two
    // queue kinds must execute the exact same event sequence.
    EXPECT_EQ(std::bit_cast<uint64_t>(a.consumer_satisfaction),
              std::bit_cast<uint64_t>(b.consumer_satisfaction))
        << shards;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.provider_satisfaction),
              std::bit_cast<uint64_t>(b.provider_satisfaction))
        << shards;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.mean_response_time),
              std::bit_cast<uint64_t>(b.mean_response_time))
        << shards;
    EXPECT_GT(a.queries_finalized, 100) << shards;
  }
}

}  // namespace
}  // namespace sbqa
