// Allocation regression tests for the event engine: a counting global
// allocator asserts that steady-state Schedule/Cancel/Run cycles with
// small callbacks perform ZERO heap allocations (EventFn small-buffer
// optimization + slot-versioned event pool), and that the end-to-end
// mediation pipeline reaches an allocation-free steady state once its
// pools are warm.
//
// Lives in its own test binary because it replaces the global operator
// new/delete (via util/counting_alloc.h; counting only, allocation
// behavior is unchanged).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/registry.h"
#include "core/sbqa.h"
#include "model/reputation.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"
#include "util/counting_alloc.h"

namespace sbqa::sim {
namespace {

using util::AllocationCount;

TEST(EventFnAllocTest, SmallClosuresAreInline) {
  struct Small {
    void* a;
    double b[5];
    void operator()() {}
  };
  static_assert(sizeof(Small) <= EventFn::kInlineSize);
  EventFn fn(Small{});
  EXPECT_FALSE(fn.heap_allocated());

  struct Big {
    double payload[16];  // 128 bytes: exceeds the inline buffer
    void operator()() {}
  };
  EventFn big(Big{});
  EXPECT_TRUE(big.heap_allocated());
}

TEST(SchedulerAllocTest, SteadyStateScheduleRunIsAllocationFree) {
  Scheduler s;
  uint64_t sink = 0;
  // Warm-up: grow the slot pool and the heap vector once.
  for (int i = 0; i < 64; ++i) {
    s.Schedule(static_cast<double>(i % 7), [&sink] { ++sink; });
  }
  s.Run();

  const uint64_t before = AllocationCount();
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 8; ++i) {
      s.Schedule(static_cast<double>(i % 5), [&sink] { ++sink; });
    }
    s.Run();
  }
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "Schedule/Run with small callbacks must not allocate";
  EXPECT_EQ(sink, 64u + 8000u);
}

TEST(SchedulerAllocTest, SteadyStateScheduleCancelIsAllocationFree) {
  Scheduler s;
  for (int i = 0; i < 32; ++i) s.Schedule(1.0, [] {});
  s.Run();

  const uint64_t before = AllocationCount();
  for (int round = 0; round < 1000; ++round) {
    const EventId keep = s.Schedule(1.0, [] {});
    const EventId kill = s.Schedule(1.0, [] {});
    s.Cancel(kill);
    s.Run();
    (void)keep;
  }
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "Cancel must not allocate (no hash set bookkeeping)";
}

TEST(NetworkAllocTest, SteadyStateBatchedSendIsAllocationFree) {
  Scheduler scheduler;
  NetworkConfig config;
  config.batch_tick = 0.001;
  Network net(&scheduler, util::Rng(7),
              std::make_unique<ConstantLatency>(0.0105), config);
  const Network::Destination inbox = net.RegisterDestination();
  uint64_t sink = 0;
  // Warm-up: allocate the batch pool and delivery vectors once.
  for (int round = 0; round < 32; ++round) {
    for (int i = 0; i < 8; ++i) net.SendTo(inbox, [&sink] { ++sink; });
    scheduler.Run();
  }

  const uint64_t before = AllocationCount();
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 8; ++i) net.SendTo(inbox, [&sink] { ++sink; });
    scheduler.Run();
  }
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "batched destination sends must recycle their batch pool";
  EXPECT_EQ(sink, 32u * 8u + 8000u);
  EXPECT_GT(net.messages_coalesced(), 0u);
}

TEST(MediationAllocTest, SteadyStateQueryPathIsAllocationFree) {
  // The full simulate-one-query path — submit, mediate (SbQA), dispatch,
  // process, results, finalize — through the pooled in-flight slots and
  // the SoA load view. After a warm-up phase every pool has reached its
  // high-water mark and the per-query allocation count must be exactly 0.
  sim::SimulationConfig sim_config;
  sim_config.seed = 42;
  sim::Simulation simulation(sim_config);
  core::Registry registry;
  core::ConsumerParams consumer_params;
  consumer_params.policy_kind = model::ConsumerPolicyKind::kReputationTrading;
  consumer_params.n_results = 3;
  registry.AddConsumer(consumer_params);
  util::Rng setup(7);
  for (int i = 0; i < 200; ++i) {
    core::ProviderParams params;
    params.capacity = setup.Uniform(0.5, 2.0);
    registry.AddProvider(params);
    registry.provider(i).preferences().Set(0, setup.Uniform(-1, 1));
    registry.consumer(0).preferences().Set(i, setup.Uniform(-1, 1));
  }
  model::ReputationRegistry reputation(registry.provider_count());
  core::MediatorConfig config;
  core::SbqaParams sbqa_params;
  sbqa_params.knbest = core::KnBestParams{20, 8};
  core::Mediator mediator(&simulation, &registry, &reputation,
                          std::make_unique<core::SbqaMethod>(sbqa_params),
                          config);

  model::QueryId next_id = 0;
  auto pump = [&](int queries) {
    for (int i = 0; i < queries; ++i) {
      model::Query query;
      query.id = ++next_id;
      query.consumer = 0;
      query.query_class = 0;
      query.n_results = 3;
      query.cost = 0.5;
      mediator.SubmitQuery(query);
      simulation.RunFor(0.05);
    }
    simulation.RunFor(600.0);  // drain
  };

  pump(300);  // warm-up: pools, scratch buffers, load view all reach size

  const uint64_t before = AllocationCount();
  pump(200);
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "steady-state mediation must be allocation-free";
  EXPECT_EQ(mediator.inflight_count(), 0u);
  EXPECT_GT(mediator.stats().queries_finalized, 400);
}

}  // namespace
}  // namespace sbqa::sim
