// Regression tests for the load-adaptive FIFO timeout ring: a rate step
// (burst far above the steady rate, then a trickle) must not pin the
// ring's backing vector at its burst high-water mark forever. The ring
// tracks the live span's high water between drains, and a drain that
// finds the capacity far above it (> 4096 slots and > 8x the recent live
// span) re-allocates down — off the steady-state path, so the
// allocation-free mediation guarantees elsewhere are untouched, which
// the stability half of this test pins by requiring the capacity to stay
// put across further trickle rounds.

#include <memory>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/registry.h"
#include "core/sbqa.h"
#include "model/reputation.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace sbqa::core {
namespace {

struct RingHarness {
  static constexpr int kProviders = 64;

  sim::Simulation simulation;
  Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<Mediator> mediator;
  model::QueryId next_id = 0;

  RingHarness() : simulation(MakeSimConfig()) {
    ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kReputationTrading;
    consumer_params.n_results = 1;
    registry.AddConsumer(consumer_params);
    util::Rng setup(7);
    for (int i = 0; i < kProviders; ++i) {
      ProviderParams params;
      params.capacity = setup.Uniform(0.5, 2.0);
      registry.AddProvider(params);
      registry.provider(i).preferences().Set(0, setup.Uniform(-1, 1));
      registry.consumer(0).preferences().Set(i, setup.Uniform(-1, 1));
    }
    reputation = std::make_unique<model::ReputationRegistry>(
        registry.provider_count());
    MediatorConfig config;
    // Short safety-net timeout so ring entries go stale (and sweeps fire)
    // quickly after their query completes.
    config.query_timeout = 5.0;
    SbqaParams sbqa_params;
    sbqa_params.knbest = KnBestParams{20, 8};
    mediator = std::make_unique<Mediator>(
        &simulation, &registry, reputation.get(),
        std::make_unique<SbqaMethod>(sbqa_params), config);
  }

  static sim::SimulationConfig MakeSimConfig() {
    sim::SimulationConfig config;
    config.seed = 17;
    return config;
  }

  void Submit(int queries) {
    for (int i = 0; i < queries; ++i) {
      model::Query query;
      query.id = ++next_id;
      query.consumer = 0;
      query.query_class = 0;
      query.n_results = 1;
      query.cost = 0.5;
      mediator->SubmitQuery(query);
    }
  }
};

TEST(TimeoutRingTest, RateStepReleasesBurstCapacityThenHoldsSteady) {
  RingHarness harness;

  // Rate step up: a 12000-query burst. Every dispatched query registers
  // a timeout entry before any goes stale, so the ring's backing vector
  // must grow far past the 4096-slot release threshold (some of the
  // burst can end unallocated under this much contention, which is why
  // the burst overshoots the threshold comfortably).
  harness.Submit(12000);
  harness.simulation.RunFor(0.1);  // arrivals dispatched, nothing resolved
  EXPECT_GT(harness.mediator->timeout_ring_size(), 4096u);
  const size_t burst_capacity = harness.mediator->timeout_ring_capacity();
  EXPECT_GT(burst_capacity, 4096u);

  // Drain the burst: completions + timeout sweeps consume every entry.
  harness.simulation.RunFor(1000.0);
  EXPECT_EQ(harness.mediator->inflight_count(), 0u);
  EXPECT_EQ(harness.mediator->timeout_ring_size(),
            harness.mediator->timeout_ring_head());

  // Rate step down: a trickle of single queries with full drains between
  // them. The first post-trickle drain sees the burst capacity at > 8x
  // the trickle's live high water and releases it.
  for (int i = 0; i < 5; ++i) {
    harness.Submit(1);
    harness.simulation.RunFor(20.0);
  }
  EXPECT_EQ(harness.mediator->inflight_count(), 0u);
  const size_t trickle_capacity = harness.mediator->timeout_ring_capacity();
  EXPECT_LE(trickle_capacity, 128u)
      << "burst capacity must be released once the live span collapses";
  EXPECT_LT(trickle_capacity, burst_capacity / 10);

  // Stability: further trickle rounds must not oscillate the capacity
  // (shrink-regrow churn on the steady path would reintroduce per-query
  // allocations).
  for (int i = 0; i < 10; ++i) {
    harness.Submit(1);
    harness.simulation.RunFor(20.0);
  }
  EXPECT_EQ(harness.mediator->timeout_ring_capacity(), trickle_capacity);
  EXPECT_EQ(harness.mediator->inflight_count(), 0u);

  // A moderate second burst (under the release threshold) keeps its
  // capacity: the ladder only releases when the gap is pathological.
  harness.Submit(512);
  harness.simulation.RunFor(1000.0);
  const size_t moderate_capacity = harness.mediator->timeout_ring_capacity();
  EXPECT_GE(moderate_capacity, 512u);
  harness.Submit(1);
  harness.simulation.RunFor(20.0);
  EXPECT_LE(harness.mediator->timeout_ring_capacity(), moderate_capacity);
}

}  // namespace
}  // namespace sbqa::core
