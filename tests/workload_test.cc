// Tests for cost models and the Poisson query generators.

#include <memory>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/sbqa.h"
#include "model/reputation.h"
#include "sim/simulation.h"
#include "workload/cost_model.h"
#include "workload/generator.h"

namespace sbqa::workload {
namespace {

TEST(CostModelTest, ConstantAlwaysSame) {
  util::Rng rng(1);
  const CostModel model = CostModel::Constant(4.5);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(model.Sample(rng), 4.5);
}

TEST(CostModelTest, UniformWithinSpread) {
  util::Rng rng(2);
  const CostModel model = CostModel::Uniform(10.0, 0.5);
  for (int i = 0; i < 10000; ++i) {
    const double v = model.Sample(rng);
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 15.0);
  }
}

TEST(CostModelTest, UniformMean) {
  util::Rng rng(3);
  const CostModel model = CostModel::Uniform(10.0, 0.3);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += model.Sample(rng);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(CostModelTest, LogNormalMeanAndPositivity) {
  util::Rng rng(4);
  const CostModel model = CostModel::LogNormal(5.0, 0.4);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = model.Sample(rng);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(CostModelDeathTest, InvalidParamsAbort) {
  EXPECT_DEATH(CostModel::Constant(0.0), "CHECK failed");
  EXPECT_DEATH(CostModel::Uniform(1.0, 1.0), "CHECK failed");
}

TEST(QueryIdSourceTest, MonotoneIds) {
  QueryIdSource ids;
  EXPECT_EQ(ids.Next(), 1);
  EXPECT_EQ(ids.Next(), 2);
  EXPECT_EQ(ids.Next(), 3);
}

/// Minimal harness to count queries reaching the mediator.
struct GeneratorHarness {
  explicit GeneratorHarness(uint64_t seed = 5) {
    sim::SimulationConfig config;
    config.seed = seed;
    simulation = std::make_unique<sim::Simulation>(config);
    core::ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    consumer = registry.AddConsumer(consumer_params);
    for (int i = 0; i < 20; ++i) {
      core::ProviderParams params;
      params.capacity = 5.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      registry.AddProvider(params);
    }
    reputation = std::make_unique<model::ReputationRegistry>(
        registry.provider_count());
    core::MediatorConfig mediator_config;
    mediator_config.simulate_network = false;
    mediator = std::make_unique<core::Mediator>(
        simulation.get(), &registry, reputation.get(),
        std::make_unique<core::SbqaMethod>(core::SbqaParams{}),
        mediator_config);
  }

  std::unique_ptr<sim::Simulation> simulation;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<core::Mediator> mediator;
  model::ConsumerId consumer = 0;
  QueryIdSource ids;
};

TEST(GeneratorTest, PoissonRateApproximatelyRespected) {
  GeneratorHarness h;
  ArrivalParams arrivals;
  arrivals.rate = 5.0;
  arrivals.end_time = 200.0;
  QueryGenerator gen(h.simulation.get(), h.mediator.get(), &h.ids, h.consumer,
                     arrivals, CostModel::Constant(0.1));
  gen.Start();
  h.simulation->RunUntil(200.0);
  // 5 q/s for 200 s = 1000 expected; allow 4 sigma ≈ 126.
  EXPECT_NEAR(static_cast<double>(gen.issued()), 1000.0, 130.0);
  EXPECT_EQ(h.mediator->stats().queries_submitted, gen.issued());
}

TEST(GeneratorTest, StopsAtEndTime) {
  GeneratorHarness h;
  ArrivalParams arrivals;
  arrivals.rate = 10.0;
  arrivals.end_time = 10.0;
  QueryGenerator gen(h.simulation.get(), h.mediator.get(), &h.ids, h.consumer,
                     arrivals, CostModel::Constant(0.1));
  gen.Start();
  h.simulation->RunUntil(100.0);
  const int64_t at_end = gen.issued();
  EXPECT_GT(at_end, 0);
  h.simulation->RunFor(100.0);
  EXPECT_EQ(gen.issued(), at_end);
}

TEST(GeneratorTest, StartTimeDelaysFirstQuery) {
  GeneratorHarness h;
  ArrivalParams arrivals;
  arrivals.rate = 50.0;
  arrivals.start_time = 10.0;
  arrivals.end_time = 11.0;
  QueryGenerator gen(h.simulation.get(), h.mediator.get(), &h.ids, h.consumer,
                     arrivals, CostModel::Constant(0.1));
  gen.Start();
  h.simulation->RunUntil(9.9);
  EXPECT_EQ(gen.issued(), 0);
  h.simulation->RunUntil(20.0);
  EXPECT_GT(gen.issued(), 0);
}

TEST(GeneratorTest, InactiveConsumerStopsIssuing) {
  GeneratorHarness h;
  ArrivalParams arrivals;
  arrivals.rate = 10.0;
  arrivals.end_time = 1000.0;
  QueryGenerator gen(h.simulation.get(), h.mediator.get(), &h.ids, h.consumer,
                     arrivals, CostModel::Constant(0.1));
  gen.Start();
  h.simulation->RunUntil(10.0);
  const int64_t before = gen.issued();
  EXPECT_GT(before, 0);
  h.registry.consumer(h.consumer).set_active(false);
  h.simulation->RunUntil(100.0);
  // One pending arrival may have been in flight; afterwards the stream dies.
  EXPECT_LE(gen.issued(), before + 1);
}

TEST(GeneratorTest, BurstFactorRaisesThroughput) {
  GeneratorHarness base(7), burst(7);
  ArrivalParams arrivals;
  arrivals.rate = 2.0;
  arrivals.end_time = 300.0;
  QueryGenerator gen_base(base.simulation.get(), base.mediator.get(),
                          &base.ids, base.consumer, arrivals,
                          CostModel::Constant(0.1));
  ArrivalParams bursty = arrivals;
  bursty.burst_factor = 5.0;
  bursty.burst_period = 30.0;
  bursty.burst_duty = 0.5;
  QueryGenerator gen_burst(burst.simulation.get(), burst.mediator.get(),
                           &burst.ids, burst.consumer, bursty,
                           CostModel::Constant(0.1));
  gen_base.Start();
  gen_burst.Start();
  base.simulation->RunUntil(300.0);
  burst.simulation->RunUntil(300.0);
  // Burst mode raises the average rate (here to ~3x the base).
  EXPECT_GT(gen_burst.issued(), gen_base.issued() * 2);
}

TEST(GeneratorDeathTest, InvalidRateAborts) {
  GeneratorHarness h;
  ArrivalParams arrivals;
  arrivals.rate = 0;
  EXPECT_DEATH(QueryGenerator(h.simulation.get(), h.mediator.get(), &h.ids,
                              h.consumer, arrivals,
                              CostModel::Constant(1.0)),
               "CHECK failed");
}

}  // namespace
}  // namespace sbqa::workload
