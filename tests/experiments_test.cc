// Tests for the experiment harness: method factory, scenario configs,
// runner determinism and the report builders.

#include <gtest/gtest.h>

#include "experiments/demo_scenarios.h"
#include "experiments/report.h"
#include "experiments/runner.h"

namespace sbqa::experiments {
namespace {

TEST(MethodFactoryTest, NamesAreStable) {
  EXPECT_EQ(MethodName(MethodSpec::Random()), "Random");
  EXPECT_EQ(MethodName(MethodSpec::RoundRobin()), "RoundRobin");
  EXPECT_EQ(MethodName(MethodSpec::Capacity()), "Capacity");
  EXPECT_EQ(MethodName(MethodSpec::Qlb()), "QLB");
  EXPECT_EQ(MethodName(MethodSpec::Economic()), "Economic");
  EXPECT_EQ(MethodName(MethodSpec::KnBest()), "KnBest");
  EXPECT_EQ(MethodName(MethodSpec::InterestOnly()), "InterestOnly");
  EXPECT_EQ(MethodName(MethodSpec::Sqlb()), "SQLB");
  EXPECT_EQ(MethodName(MethodSpec::Sbqa()), "SbQA");
}

TEST(MethodFactoryTest, SqlbConsultsEveryone) {
  MethodSpec spec = MethodSpec::Sqlb();
  auto method = MakeMethod(spec);
  auto* sbqa = dynamic_cast<core::SbqaMethod*>(method.get());
  ASSERT_NE(sbqa, nullptr);
  EXPECT_EQ(sbqa->params().knbest.k_candidates, 0u);
  EXPECT_EQ(sbqa->params().knbest.kn_best, 0u);
}

TEST(ScenarioConfigTest, CaptiveVsAutonomous) {
  const ScenarioConfig s1 = Scenario1Config();
  EXPECT_FALSE(s1.departure.providers_can_leave);
  EXPECT_FALSE(s1.departure.consumers_can_leave);
  const ScenarioConfig s2 = Scenario2Config();
  EXPECT_TRUE(s2.departure.providers_can_leave);
  EXPECT_TRUE(s2.departure.consumers_can_leave);
  EXPECT_DOUBLE_EQ(s2.departure.provider_threshold, 0.35);  // paper values
  EXPECT_DOUBLE_EQ(s2.departure.consumer_threshold, 0.5);
}

TEST(ScenarioConfigTest, Scenario5SwapsPolicies) {
  const ScenarioConfig s5 = Scenario5Config();
  for (const auto& project : s5.population.projects) {
    EXPECT_EQ(project.policy, model::ConsumerPolicyKind::kResponseTimeOnly);
  }
  EXPECT_EQ(s5.population.volunteers.policy,
            model::ProviderPolicyKind::kLoadOnly);
}

TEST(ScenarioConfigTest, Scenario6GridComputing) {
  const ScenarioConfig s6 = Scenario6Config();
  EXPECT_TRUE(s6.departure.providers_can_leave);
  EXPECT_FALSE(s6.departure.consumers_can_leave);
}

TEST(ScenarioConfigTest, Scenario7HasGuestParticipants) {
  const ScenarioConfig s7 = Scenario7Config();
  EXPECT_EQ(s7.population.projects.size(), 4u);  // 3 demo + guest
  EXPECT_EQ(s7.population.projects.back().name, "guest-project");
  EXPECT_TRUE(static_cast<bool>(s7.population_hook));
}

TEST(ScenarioConfigTest, MethodListsWellFormed) {
  EXPECT_EQ(BaselineMethods().size(), 2u);
  EXPECT_EQ(HeadlineMethods().size(), 3u);
  EXPECT_GE(AllMethods().size(), 8u);
}

ScenarioConfig SmallConfig(uint64_t seed = 123) {
  // A fast config for unit testing: 40 volunteers, short run.
  ScenarioConfig config = BaseDemoConfig(seed, /*volunteers=*/40,
                                         /*duration=*/60.0);
  config.sample_interval = 10.0;
  return config;
}

TEST(RunnerTest, ProducesPopulatedResult) {
  const RunResult result = RunScenario(SmallConfig());
  EXPECT_GT(result.summary.queries_finalized, 50);
  EXPECT_GT(result.summary.throughput, 0.0);
  EXPECT_EQ(result.consumers.size(), 3u);
  EXPECT_EQ(result.providers.size(), 40u);
  EXPECT_FALSE(result.series.consumer_satisfaction.empty());
  EXPECT_EQ(result.summary.method, "SbQA");
  // Everything bounded.
  EXPECT_GE(result.summary.consumer_satisfaction, 0.0);
  EXPECT_LE(result.summary.consumer_satisfaction, 1.0);
  EXPECT_GE(result.summary.provider_satisfaction, 0.0);
  EXPECT_LE(result.summary.provider_satisfaction, 1.0);
}

TEST(RunnerTest, DeterministicForFixedSeed) {
  const RunResult a = RunScenario(SmallConfig(77));
  const RunResult b = RunScenario(SmallConfig(77));
  EXPECT_EQ(a.summary.queries_finalized, b.summary.queries_finalized);
  EXPECT_DOUBLE_EQ(a.summary.consumer_satisfaction,
                   b.summary.consumer_satisfaction);
  EXPECT_DOUBLE_EQ(a.summary.provider_satisfaction,
                   b.summary.provider_satisfaction);
  EXPECT_DOUBLE_EQ(a.summary.mean_response_time, b.summary.mean_response_time);
}

TEST(RunnerTest, DifferentSeedsDiffer) {
  const RunResult a = RunScenario(SmallConfig(1));
  const RunResult b = RunScenario(SmallConfig(2));
  // Not bit-identical (astronomically unlikely under different seeds).
  EXPECT_NE(a.summary.mean_response_time, b.summary.mean_response_time);
}

TEST(RunnerTest, CompareMethodsHoldsPopulationFixed) {
  const std::vector<RunResult> results =
      CompareMethods(SmallConfig(), {MethodSpec::Capacity(),
                                     MethodSpec::Random()});
  ASSERT_EQ(results.size(), 2u);
  // Same seed => identical workloads submitted.
  EXPECT_EQ(results[0].summary.queries_submitted,
            results[1].summary.queries_submitted);
  EXPECT_EQ(results[0].summary.method, "Capacity");
  EXPECT_EQ(results[1].summary.method, "Random");
}

TEST(RunnerTest, AllMethodsRunCleanly) {
  ScenarioConfig config = SmallConfig();
  config.duration = 30.0;
  for (const MethodSpec& spec : AllMethods()) {
    const RunResult result = RunScenario([&] {
      ScenarioConfig c = config;
      c.method = spec;
      return c;
    }());
    EXPECT_GT(result.summary.queries_finalized, 0)
        << result.summary.method;
    EXPECT_EQ(result.summary.queries_finalized,
              result.summary.queries_submitted)
        << result.summary.method << " left queries unfinalized";
  }
}

TEST(ReportTest, TablesHaveOneRowPerResult) {
  const std::vector<RunResult> results =
      CompareMethods(SmallConfig(), BaselineMethods());
  EXPECT_EQ(SatisfactionTable(results).row_count(), 2u);
  EXPECT_EQ(PerformanceTable(results).row_count(), 2u);
  EXPECT_EQ(RetentionTable(results).row_count(), 2u);
  EXPECT_EQ(LoadBalanceTable(results).row_count(), 2u);
  EXPECT_EQ(OverviewTable(results).row_count(), 2u);
}

TEST(ReportTest, TablesMentionMethodNames) {
  const std::vector<RunResult> results =
      CompareMethods(SmallConfig(), {MethodSpec::Capacity()});
  const std::string table = OverviewTable(results).ToString();
  EXPECT_NE(table.find("Capacity"), std::string::npos);
}

TEST(ReportTest, SeriesChartRendersAllMethods) {
  const std::vector<RunResult> results =
      CompareMethods(SmallConfig(), BaselineMethods());
  const std::string chart =
      SeriesChart(results, ProviderSatisfactionSeries, "test-title");
  EXPECT_NE(chart.find("test-title"), std::string::npos);
  EXPECT_NE(chart.find("Capacity"), std::string::npos);
  EXPECT_NE(chart.find("Economic"), std::string::npos);
}

}  // namespace
}  // namespace sbqa::experiments
