// Tests for the ShardSet barrier driver and the deterministic cross-shard
// mailbox: window/barrier mechanics, fixed drain order, delivery-time
// clamping, threaded-vs-serial equivalence and the 1-shard passthrough.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/shard_set.h"
#include "util/rng.h"

namespace sbqa::sim {
namespace {

SimulationConfig ShardConfig(uint32_t shards, bool threads,
                             double tick = 0.01) {
  SimulationConfig config;
  config.seed = 99;
  config.shard_count = shards;
  config.shard_use_threads = threads;
  config.shard_barrier_tick = tick;
  return config;
}

TEST(ShardSetTest, ShardSeedsFollowStreamSplit) {
  ShardSet shards(ShardConfig(3, /*threads=*/false));
  EXPECT_EQ(shards.shard(0).config().seed, 99u);
  EXPECT_EQ(shards.shard(1).config().seed, util::Rng::StreamSeed(99, 1));
  EXPECT_EQ(shards.shard(2).config().seed, util::Rng::StreamSeed(99, 2));
  EXPECT_NE(shards.shard(1).config().seed, shards.shard(2).config().seed);
}

TEST(ShardSetTest, RunUntilAdvancesEveryShardToBarrierTime) {
  ShardSet shards(ShardConfig(2, /*threads=*/false));
  shards.RunUntil(0.1);
  EXPECT_DOUBLE_EQ(shards.now(), 0.1);
  EXPECT_DOUBLE_EQ(shards.shard(0).now(), 0.1);
  EXPECT_DOUBLE_EQ(shards.shard(1).now(), 0.1);
  EXPECT_GE(shards.barriers(), 10u);
}

TEST(ShardSetTest, CrossShardMessageNotDeliveredBeforeBarrier) {
  ShardSet shards(ShardConfig(2, /*threads=*/false, /*tick=*/0.01));
  double delivered_time = -1;
  // Shard 0 posts at its window start; the message must only fire on
  // shard 1 after the barrier that drains it, never mid-window.
  shards.shard(0).scheduler().Schedule(0.0015, [&] {
    shards.PostTo(0, 1, /*deliver_at=*/0.002,
                  [&] { delivered_time = shards.shard(1).now(); });
  });
  shards.RunUntil(0.05);
  ASSERT_GE(delivered_time, 0.0);
  // Sent in window (0, 0.01]; drained at barrier 0.01; nominal delivery
  // time 0.002 clamps up to the barrier.
  EXPECT_DOUBLE_EQ(delivered_time, 0.01);
  EXPECT_EQ(shards.cross_shard_messages(), 1u);
}

TEST(ShardSetTest, LateDeliveryTimeIsHonored) {
  ShardSet shards(ShardConfig(2, /*threads=*/false, /*tick=*/0.01));
  double delivered_time = -1;
  shards.shard(0).scheduler().Schedule(0.001, [&] {
    shards.PostTo(0, 1, /*deliver_at=*/0.035,
                  [&] { delivered_time = shards.shard(1).now(); });
  });
  shards.RunUntil(0.06);
  // Drained at the 0.01 barrier but scheduled for its nominal 0.035.
  EXPECT_DOUBLE_EQ(delivered_time, 0.035);
}

TEST(ShardSetTest, DrainOrderIsDestinationThenSourceThenFifo) {
  ShardSet shards(ShardConfig(3, /*threads=*/false, /*tick=*/0.01));
  std::vector<std::string> order;
  // All messages land at the same clamped time (the barrier), so the
  // scheduler's FIFO tie-break exposes the drain order: for destination 2,
  // source 0's messages precede source 1's, in per-source posting order.
  shards.shard(1).scheduler().Schedule(0.001, [&] {
    shards.PostTo(1, 2, 0.001, [&] { order.push_back("s1-a"); });
    shards.PostTo(1, 2, 0.001, [&] { order.push_back("s1-b"); });
  });
  shards.shard(0).scheduler().Schedule(0.002, [&] {
    shards.PostTo(0, 2, 0.001, [&] { order.push_back("s0-a"); });
  });
  shards.RunUntil(0.03);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "s0-a");
  EXPECT_EQ(order[1], "s1-a");
  EXPECT_EQ(order[2], "s1-b");
}

TEST(ShardSetTest, FinalBarrierMessagesSettleBeforeRunUntilReturns) {
  // A message posted during the LAST window (clamped to the final
  // barrier) must still execute before RunUntil returns — including a
  // chained reply it triggers — matching Scheduler::RunUntil's "no event
  // with timestamp <= t left unrun" contract. This is the path a
  // borrowed query's homeward outcome takes when it finalizes during the
  // drain horizon's final window.
  ShardSet shards(ShardConfig(2, /*threads=*/false, /*tick=*/0.01));
  bool delivered = false;
  bool reply_delivered = false;
  shards.shard(0).scheduler().Schedule(0.015, [&] {
    shards.PostTo(0, 1, /*deliver_at=*/0.016, [&] {
      delivered = true;
      // Chained settlement: the handler posts back at the horizon.
      shards.PostTo(1, 0, /*deliver_at=*/0.016,
                    [&] { reply_delivered = true; });
    });
  });
  shards.RunUntil(0.02);
  EXPECT_TRUE(delivered);
  EXPECT_TRUE(reply_delivered);
  EXPECT_DOUBLE_EQ(shards.now(), 0.02);
}

TEST(ShardSetTest, BarrierHooksRunAtEveryBarrier) {
  ShardSet shards(ShardConfig(2, /*threads=*/false, /*tick=*/0.01));
  std::vector<double> hook_times;
  shards.AddBarrierHook([&](double now) { hook_times.push_back(now); });
  shards.RunUntil(0.05);
  ASSERT_EQ(hook_times.size(), shards.barriers());
  EXPECT_DOUBLE_EQ(hook_times.back(), 0.05);
}

TEST(ShardSetTest, MembershipPhaseRunsAfterDrainBeforeHooks) {
  ShardSet shards(ShardConfig(2, /*threads=*/false, /*tick=*/0.01));
  std::vector<std::string> order;
  shards.shard(0).scheduler().Schedule(0.001, [&] {
    shards.PostTo(0, 1, 0.001, [&] { order.push_back("message"); });
  });
  shards.SetMembershipHook([&](double) { order.push_back("membership"); });
  shards.AddBarrierHook([&](double) { order.push_back("hook"); });
  shards.RunUntil(0.01);
  // At the first (and only) barrier: membership before hook, both after
  // the mailbox drain; the clamped message itself settles before
  // RunUntil returns.
  ASSERT_GE(order.size(), 3u);
  EXPECT_NE(std::find(order.begin(), order.end(), std::string("message")),
            order.end());
  const auto membership_at =
      std::find(order.begin(), order.end(), std::string("membership"));
  const auto hook_at = std::find(order.begin(), order.end(),
                                 std::string("hook"));
  ASSERT_NE(membership_at, order.end());
  ASSERT_NE(hook_at, order.end());
  EXPECT_LT(membership_at - order.begin(), hook_at - order.begin());
}

TEST(ShardSetTest, MembershipPhaseMessagesSettleAtTheHorizon) {
  // A membership application at the FINAL barrier may post cross-shard
  // messages (a departing provider's borrowed-query outcome routed home);
  // they must still be drained and executed before RunUntil returns.
  ShardSet shards(ShardConfig(2, /*threads=*/false, /*tick=*/0.01));
  bool posted = false;
  bool delivered = false;
  shards.SetMembershipHook([&](double now) {
    if (!posted && now >= 0.02) {  // the final barrier of RunUntil(0.02)
      posted = true;
      shards.PostTo(0, 1, now, [&] { delivered = true; });
    }
  });
  shards.RunUntil(0.02);
  EXPECT_TRUE(posted);
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(shards.now(), 0.02);
}

TEST(ShardSetTest, AdaptiveBarrierTickShrinksUnderTrafficAndRecovers) {
  SimulationConfig config = ShardConfig(2, /*threads=*/false, /*tick=*/0.01);
  config.adaptive_barrier = true;
  ShardSet shards(config);
  EXPECT_DOUBLE_EQ(shards.current_barrier_tick(), 0.01);

  // Phase 1 — heavy cross-shard traffic: every window posts more than one
  // message per shard, so each barrier halves the window (down to the
  // 1/64 floor).
  struct Chatter {
    ShardSet* shards;
    void Tick(double until) {
      for (int i = 0; i < 4; ++i) {
        shards->PostTo(0, 1, shards->shard(0).now(), [] {});
      }
      if (shards->shard(0).now() < until) {
        shards->shard(0).scheduler().Schedule(0.0001,
                                              [this, until] { Tick(until); });
      }
    }
  };
  Chatter chatter{&shards};
  shards.shard(0).scheduler().Schedule(0.0001,
                                       [&chatter] { chatter.Tick(0.1); });
  shards.RunUntil(0.1);
  EXPECT_LT(shards.current_barrier_tick(), 0.01);
  EXPECT_GE(shards.current_barrier_tick(), 0.01 / 64.0 - 1e-12);

  // Phase 2 — idle mailboxes: the window doubles back to the configured
  // maximum and stays there.
  shards.RunUntil(0.5);
  EXPECT_DOUBLE_EQ(shards.current_barrier_tick(), 0.01);
}

TEST(ShardSetTest, AdaptiveBarrierStaysDeterministic) {
  // Same workload, adaptive on, threaded vs serial: identical traces and
  // identical adapted tick (the tick depends only on deterministic
  // drained-message counts).
  auto run = [](bool threads) {
    SimulationConfig config = ShardConfig(4, threads, /*tick=*/0.01);
    config.adaptive_barrier = true;
    ShardSet shards(config);
    // Per-target hash slots (single writer each), like the ping workload.
    std::vector<uint64_t> hashes(4, 0);
    struct Pinger {
      ShardSet* shards;
      std::vector<uint64_t>* hashes;
      uint32_t shard;
      void Tick() {
        Simulation& sim = shards->shard(shard);
        const uint64_t draw = sim.rng()();
        const uint32_t target = (shard + 1) % shards->shard_count();
        auto* h = hashes;
        shards->PostTo(shard, target, sim.now() + 0.002,
                       [h, target, draw] {
                         (*h)[target] = (*h)[target] * 1099511628211ull ^ draw;
                       });
        if (sim.now() < 0.2) {
          sim.scheduler().Schedule(0.003, [this] { Tick(); });
        }
      }
    };
    std::vector<Pinger> pingers;
    for (uint32_t s = 0; s < 4; ++s) {
      pingers.push_back(Pinger{&shards, &hashes, s});
    }
    for (uint32_t s = 0; s < 4; ++s) {
      shards.shard(s).scheduler().Schedule(
          0.001, [&pingers, s] { pingers[s].Tick(); });
    }
    shards.RunUntil(0.4);
    uint64_t combined = 0;
    for (uint64_t h : hashes) combined = combined * 1099511628211ull ^ h;
    return std::pair<uint64_t, double>(combined,
                                       shards.current_barrier_tick());
  };
  const auto serial = run(false);
  const auto threaded = run(true);
  EXPECT_EQ(serial.first, threaded.first);
  EXPECT_DOUBLE_EQ(serial.second, threaded.second);
}

TEST(ShardSetTest, SingleShardMatchesStandaloneSimulation) {
  // The 1-shard ShardSet must reproduce a standalone Simulation exactly:
  // StreamSeed(seed, 0) == seed, so shard 0 carries the root stream.
  SimulationConfig config;
  config.seed = 1234;
  Simulation standalone(config);

  config.shard_count = 1;
  ShardSet shards(config);
  EXPECT_FALSE(shards.threaded());  // nothing to parallelize
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(shards.shard(0).rng()(), standalone.rng()());
  }
}

// One synthetic workload, run twice (serial vs threads): each shard
// repeatedly samples its own RNG, posts the draw to the next shard, and
// folds received draws into a running hash. Identical hashes across modes
// prove the protocol sequences cross-shard effects identically no matter
// how the OS schedules the workers.
uint64_t RunPingWorkload(bool threads) {
  ShardSet shards(ShardConfig(4, threads, /*tick=*/0.01));
  std::vector<uint64_t> hashes(4, 0);
  struct Pinger {
    ShardSet* shards;
    std::vector<uint64_t>* hashes;
    uint32_t shard;
    void Tick() {
      Simulation& sim = shards->shard(shard);
      const uint64_t draw = sim.rng()();
      const uint32_t next = (shard + 1) % shards->shard_count();
      auto* h = hashes;
      const uint32_t target = next;
      shards->PostTo(shard, next, sim.now() + 0.003,
                     [h, target, draw] {
                       (*h)[target] = (*h)[target] * 1099511628211ull ^ draw;
                     });
      if (sim.now() < 0.5) {
        sim.scheduler().Schedule(0.007, [this] { Tick(); });
      }
    }
  };
  std::vector<Pinger> pingers;
  for (uint32_t s = 0; s < 4; ++s) {
    pingers.push_back(Pinger{&shards, &hashes, s});
  }
  for (uint32_t s = 0; s < 4; ++s) {
    shards.shard(s).scheduler().Schedule(0.001,
                                         [&pingers, s] { pingers[s].Tick(); });
  }
  shards.RunUntil(1.0);
  uint64_t combined = 0;
  for (uint64_t h : hashes) combined = combined * 1099511628211ull ^ h;
  return combined;
}

TEST(ShardSetTest, ThreadedAndSerialProduceIdenticalTraces) {
  const uint64_t serial = RunPingWorkload(/*threads=*/false);
  const uint64_t threaded = RunPingWorkload(/*threads=*/true);
  EXPECT_EQ(serial, threaded);
  // And reproducible run to run.
  EXPECT_EQ(RunPingWorkload(/*threads=*/true), threaded);
}

}  // namespace
}  // namespace sbqa::sim
