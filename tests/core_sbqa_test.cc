// Unit tests for the SbqaMethod allocation pipeline and the Equation-2
// self-adaptation feedback loop.

#include "core/sbqa.h"

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "model/reputation.h"
#include "sim/simulation.h"

namespace sbqa::core {
namespace {

/// Harness exposing Allocate() directly on crafted participant state.
struct SbqaHarness {
  explicit SbqaHarness(int providers, uint64_t seed = 3,
                       ProviderSatisfactionDenominator mode =
                           ProviderSatisfactionDenominator::kPerformedOnly) {
    sim::SimulationConfig config;
    config.seed = seed;
    simulation = std::make_unique<sim::Simulation>(config);
    ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    registry.AddConsumer(consumer_params);
    for (int i = 0; i < providers; ++i) {
      ProviderParams params;
      params.capacity = 1.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      params.satisfaction_mode = mode;
      registry.AddProvider(params);
      candidates.push_back(i);
    }
    reputation =
        std::make_unique<model::ReputationRegistry>(registry.provider_count());
    mediator = std::make_unique<Mediator>(
        simulation.get(), &registry, reputation.get(),
        std::make_unique<SbqaMethod>(SbqaParams{}));
  }

  AllocationDecision Allocate(SbqaMethod& method, int n_results = 1) {
    query.id = ++next_id;
    query.consumer = 0;
    query.n_results = n_results;
    query.cost = 1.0;
    AllocationContext ctx;
    ctx.query = &query;
    ctx.candidates = &candidate_set;
    ctx.mediator = mediator.get();
    ctx.now = simulation->now();
    AllocationDecision decision;
    method.Allocate(ctx, &decision);
    return decision;
  }

  std::unique_ptr<sim::Simulation> simulation;
  Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<Mediator> mediator;
  std::vector<model::ProviderId> candidates;
  CandidateSet candidate_set{&candidates};
  model::Query query;
  model::QueryId next_id = 0;
};

TEST(SbqaMethodTest, SelectsBestMutualPairWhenConsultingEveryone) {
  SbqaHarness h(4);
  // Provider 2 is the only strongly mutual pairing.
  h.registry.consumer(0).preferences().Set(0, 0.2);
  h.registry.consumer(0).preferences().Set(1, -0.5);
  h.registry.consumer(0).preferences().Set(2, 0.9);
  h.registry.consumer(0).preferences().Set(3, 0.1);
  for (int i = 0; i < 4; ++i) {
    h.registry.provider(i).preferences().Set(0, i == 2 ? 0.9 : 0.1);
  }
  SbqaMethod method(SqlbParams());  // consult all, adaptive omega
  for (int round = 0; round < 20; ++round) {
    const AllocationDecision d = h.Allocate(method, 1);
    ASSERT_EQ(d.selected.size(), 1u);
    EXPECT_EQ(d.selected[0], 2);
  }
}

TEST(SbqaMethodTest, ConsultedIsKnAndCarriesIntentions) {
  SbqaHarness h(10);
  SbqaParams params;
  params.knbest = KnBestParams{8, 5};
  SbqaMethod method(params);
  const AllocationDecision d = h.Allocate(method, 2);
  EXPECT_EQ(d.consulted.size(), 5u);
  EXPECT_EQ(d.provider_intentions.size(), 5u);
  EXPECT_EQ(d.consumer_intentions.size(), 5u);
  EXPECT_EQ(d.selected.size(), 2u);
  EXPECT_TRUE(d.used_intention_round);
  const std::set<model::ProviderId> consulted(d.consulted.begin(),
                                              d.consulted.end());
  for (model::ProviderId p : d.selected) {
    EXPECT_TRUE(consulted.contains(p));
  }
}

TEST(SbqaMethodTest, SelectionCappedByKn) {
  SbqaHarness h(10);
  SbqaParams params;
  params.knbest = KnBestParams{10, 3};
  SbqaMethod method(params);
  // q.n = 5 > kn = 3: the mediator can only allocate min(n, kn) = 3.
  const AllocationDecision d = h.Allocate(method, 5);
  EXPECT_EQ(d.selected.size(), 3u);
}

// Within the positive branch, omega decides whose intention rules. (Note
// the branch condition of Definition 3 is omega-independent: a provider the
// consumer is hostile to lands on the negative branch even at omega = 1, so
// these tests keep all intentions positive.)
TEST(SbqaMethodTest, FixedOmegaZeroFollowsConsumerOnly) {
  SbqaHarness h(2);
  h.registry.consumer(0).preferences().Set(0, 0.9);
  h.registry.consumer(0).preferences().Set(1, 0.2);
  h.registry.provider(0).preferences().Set(0, 0.05);
  h.registry.provider(1).preferences().Set(0, 0.95);
  SbqaParams params = SqlbParams(OmegaMode::kFixed, /*fixed_omega=*/0.0);
  SbqaMethod method(params);
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(h.Allocate(method, 1).selected[0], 0);  // consumer's favorite
  }
}

TEST(SbqaMethodTest, FixedOmegaOneFollowsProvidersOnly) {
  SbqaHarness h(2);
  h.registry.consumer(0).preferences().Set(0, 0.9);
  h.registry.consumer(0).preferences().Set(1, 0.2);
  h.registry.provider(0).preferences().Set(0, 0.05);
  h.registry.provider(1).preferences().Set(0, 0.95);
  SbqaParams params = SqlbParams(OmegaMode::kFixed, /*fixed_omega=*/1.0);
  SbqaMethod method(params);
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(h.Allocate(method, 1).selected[0], 1);  // providers' favorite
  }
}

TEST(SbqaMethodTest, HostilePairStaysOnNegativeBranchEvenAtOmegaOne) {
  SbqaHarness h(2);
  // Provider 1 is extremely willing but the consumer is hostile to it:
  // Definition 3's branch condition vetoes the pairing regardless of omega.
  h.registry.consumer(0).preferences().Set(0, 0.3);
  h.registry.consumer(0).preferences().Set(1, -0.9);
  h.registry.provider(0).preferences().Set(0, 0.05);
  h.registry.provider(1).preferences().Set(0, 1.0);
  SbqaParams params = SqlbParams(OmegaMode::kFixed, /*fixed_omega=*/1.0);
  SbqaMethod method(params);
  EXPECT_EQ(h.Allocate(method, 1).selected[0], 0);
}

TEST(SbqaMethodTest, MutualPositivityBeatsOneSidedEnthusiasm) {
  SbqaHarness h(2);
  // Pair 0: both mildly positive. Pair 1: consumer hostile, provider eager.
  h.registry.consumer(0).preferences().Set(0, 0.3);
  h.registry.consumer(0).preferences().Set(1, -0.8);
  h.registry.provider(0).preferences().Set(0, 0.3);
  h.registry.provider(1).preferences().Set(0, 1.0);
  SbqaMethod method(SqlbParams());
  EXPECT_EQ(h.Allocate(method, 1).selected[0], 0);
}

TEST(SbqaMethodTest, ColdStartUsesConfiguredConsumerSatisfaction) {
  SbqaHarness h(2);
  SbqaParams params = SqlbParams();
  params.cold_start_consumer_satisfaction = 0.5;
  SbqaMethod method(params);
  // No crash, sane decision with empty satisfaction windows.
  const AllocationDecision d = h.Allocate(method, 1);
  EXPECT_EQ(d.selected.size(), 1u);
}

// --- The Equation-2 feedback loop ----------------------------------------------
//
// Omega only matters where the two intentions differ: with PI > CI > 0, a
// larger omega (dissatisfied provider) raises the score. These tests craft
// exactly that regime: providers want queries (PI = 0.8) more than the
// consumer cares who serves it (CI = 0.4).

void SetUpLoopHarness(SbqaHarness& h) {
  h.registry.consumer(0).preferences().Set(0, 0.4);
  h.registry.consumer(0).preferences().Set(1, 0.4);
  h.registry.provider(0).preferences().Set(0, 0.8);
  h.registry.provider(1).preferences().Set(0, 0.8);
  // Provider 0 is doing fine; provider 1 is starved.
  for (int i = 0; i < 10; ++i) {
    h.registry.provider(0).satisfaction_tracker().RecordProposal(0.8, true);
  }
  for (int i = 0; i < 50; ++i) {
    h.registry.provider(1).satisfaction_tracker().RecordProposal(0.8, false);
  }
  // Consumer history so delta_s(c) is meaningful (0.8).
  for (int i = 0; i < 50; ++i) {
    h.registry.consumer(0).satisfaction_tracker().RecordQuery(0.8, 0.8, 1.0);
  }
}

TEST(AdaptiveOmegaLoopTest, DissatisfiedProviderWinsTheNextMediation) {
  SbqaHarness h(2);
  SetUpLoopHarness(h);
  // Equation 2: omega(p0) = ((0.8 - 0.9) + 1)/2 = 0.45,
  //             omega(p1) = ((0.8 - 0.0) + 1)/2 = 0.9.
  // Scores: 0.8^0.45 * 0.4^0.55 = 0.546 vs 0.8^0.9 * 0.4^0.1 = 0.746.
  SbqaMethod adaptive(SqlbParams(OmegaMode::kAdaptive));
  const AllocationDecision d = h.Allocate(adaptive, 1);
  EXPECT_EQ(d.selected[0], 1);  // the starved provider gets the query
}

TEST(AdaptiveOmegaLoopTest, FixedOmegaHasNoSuchBoost) {
  SbqaHarness h(2);
  SetUpLoopHarness(h);
  // With a fixed omega the two providers score identically (same PI, CI);
  // the deterministic tie-break ignores the satisfaction deficit and the
  // starved provider stays starved.
  SbqaMethod fixed(SqlbParams(OmegaMode::kFixed, /*fixed_omega=*/0.5));
  const AllocationDecision d = h.Allocate(fixed, 1);
  EXPECT_EQ(d.selected[0], 0);
}

/// Under the paper's performed-only denominator a single win restores a
/// provider's satisfaction (quality of performed work, not win rate), so
/// the adaptive loop acts as a *periodic rescue*: whenever the starved
/// provider's window loses its last win, Equation 2 hands it the very next
/// mediation. Starvation can never persist.
TEST(AdaptiveOmegaLoopTest, PerformedOnlyLoopRescuesPeriodically) {
  SbqaHarness h(2);
  SetUpLoopHarness(h);
  SbqaMethod adaptive(SqlbParams(OmegaMode::kAdaptive));
  int consecutive_dissatisfied = 0;
  int max_consecutive_dissatisfied = 0;
  int wins_1 = 0;
  for (int round = 0; round < 150; ++round) {
    const AllocationDecision d = h.Allocate(adaptive, 1);
    if (d.selected[0] == 1) ++wins_1;
    for (size_t i = 0; i < d.consulted.size(); ++i) {
      h.registry.provider(d.consulted[i])
          .satisfaction_tracker()
          .RecordProposal(d.provider_intentions[i],
                          d.consulted[i] == d.selected[0]);
    }
    if (h.registry.provider(1).satisfaction() == 0.0) {
      ++consecutive_dissatisfied;
      max_consecutive_dissatisfied =
          std::max(max_consecutive_dissatisfied, consecutive_dissatisfied);
    } else {
      consecutive_dissatisfied = 0;
    }
  }
  EXPECT_GE(wins_1, 2);  // rescued once per window cycle (k = 50)
  EXPECT_LE(max_consecutive_dissatisfied, 2);
}

/// With the all-proposed denominator, satisfaction *is* a (quality-
/// weighted) win rate, and the same feedback loop converges to an even
/// split between equivalent providers.
TEST(AdaptiveOmegaLoopTest, WinRateSemanticsShareWorkEvenly) {
  SbqaHarness h(2, /*seed=*/3,
                ProviderSatisfactionDenominator::kAllProposed);
  SetUpLoopHarness(h);
  SbqaMethod adaptive(SqlbParams(OmegaMode::kAdaptive));
  int wins_1_late = 0;
  for (int round = 0; round < 300; ++round) {
    const AllocationDecision d = h.Allocate(adaptive, 1);
    if (round >= 100 && d.selected[0] == 1) ++wins_1_late;
    for (size_t i = 0; i < d.consulted.size(); ++i) {
      h.registry.provider(d.consulted[i])
          .satisfaction_tracker()
          .RecordProposal(d.provider_intentions[i],
                          d.consulted[i] == d.selected[0]);
    }
  }
  // Of the last 200 mediations, the formerly starved provider holds a fair
  // share, and the two satisfactions have met.
  EXPECT_GT(wins_1_late, 60);
  EXPECT_LT(wins_1_late, 140);
  EXPECT_NEAR(h.registry.provider(0).satisfaction(),
              h.registry.provider(1).satisfaction(), 0.1);
}

}  // namespace
}  // namespace sbqa::core
