// Tests for Status / StatusOr.

#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace sbqa::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusCodeToStringTest, AllNamesStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::string> v(std::string("ab"));
  v.value() += "c";
  EXPECT_EQ(*v, "abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  const std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH({ (void)v.value(); }, "CHECK failed");
}

}  // namespace
}  // namespace sbqa::util
