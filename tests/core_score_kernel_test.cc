// Equivalence and determinism tests for the batched SoA scoring kernel
// (core/score_kernel.h): the kExact kernel must reproduce the seed
// per-candidate pipeline bit for bit, and the kBatched kernel must agree
// with kExact up to documented FP tolerance — identical selected sets
// except inside floating-point ties, intentions within 1e-12 — plus a
// chi-squared check that tie-heavy allocation distributions match.

#include "core/score_kernel.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/sbqa.h"
#include "core/score.h"
#include "model/reputation.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace sbqa::core {
namespace {

/// Harness with a generated policy-diverse population. Two harnesses built
/// from the same (providers, seed, consumer_kind) are bit-identical — only
/// the kernel kind differs — so exact and batched runs see the same
/// population, the same RNG streams and therefore the same Kn samples.
struct KernelHarness {
  KernelHarness(int providers, uint64_t seed, ScoreKernelKind kind,
                model::ConsumerPolicyKind consumer_kind =
                    model::ConsumerPolicyKind::kReputationTrading,
                bool diversify = true) {
    sim::SimulationConfig sim_config;
    sim_config.seed = seed;
    sim_config.scoring_kernel = kind;
    simulation = std::make_unique<sim::Simulation>(sim_config);
    util::Rng gen(seed * 7919 + 17);  // population stream, not the sim's
    ConsumerParams consumer_params;
    consumer_params.policy_kind = consumer_kind;
    consumer_params.phi = diversify ? 0.3 + 0.6 * gen.NextDouble() : 0.7;
    registry.AddConsumer(consumer_params);
    for (int i = 0; i < providers; ++i) {
      ProviderParams params;
      params.capacity = diversify ? 0.5 + 3.0 * gen.NextDouble() : 1.0;
      if (diversify) {
        const double pick = gen.NextDouble();
        params.policy_kind =
            pick < 0.34 ? model::ProviderPolicyKind::kPreferenceOnly
            : pick < 0.67
                ? model::ProviderPolicyKind::kUtilizationTrading
                : model::ProviderPolicyKind::kLoadOnly;
        params.psi = 0.2 + 0.7 * gen.NextDouble();
      }
      registry.AddProvider(params);
      candidates.push_back(i);
    }
    reputation =
        std::make_unique<model::ReputationRegistry>(registry.provider_count());
    if (diversify) {
      for (int i = 0; i < providers; ++i) {
        // Mutual preferences, reputation history, provider satisfaction
        // windows and live backlog all spread across the population.
        registry.consumer(0).preferences().Set(
            i, gen.Uniform(-1.0, 1.0));
        registry.provider(i).preferences().Set(0, gen.Uniform(-1.0, 1.0));
        reputation->Record(i, gen.NextDouble());
        const int proposals = static_cast<int>(gen.NextDouble() * 4);
        for (int r = 0; r < proposals; ++r) {
          registry.provider(i).satisfaction_tracker().RecordProposal(
              gen.NextDouble(), gen.NextDouble() < 0.5);
        }
        if (gen.NextDouble() < 0.7) {
          registry.hot().Enqueue(static_cast<uint32_t>(i), 0.0,
                                 gen.Uniform(0.0, 8.0));
        }
      }
    }
    MediatorConfig config;
    config.scoring_kernel = kind;
    mediator = std::make_unique<Mediator>(simulation.get(), &registry,
                                          reputation.get(),
                                          std::make_unique<SbqaMethod>(
                                              SbqaParams{}),
                                          config);
  }

  AllocationDecision Allocate(SbqaMethod& method, int n_results = 1,
                              double cost = 1.0) {
    query.id = ++next_id;
    query.consumer = 0;
    query.n_results = n_results;
    query.cost = cost;
    AllocationContext ctx;
    ctx.query = &query;
    ctx.candidates = &candidate_set;
    ctx.mediator = mediator.get();
    ctx.now = simulation->now();
    AllocationDecision decision;
    method.Allocate(ctx, &decision);
    return decision;
  }

  std::unique_ptr<sim::Simulation> simulation;
  Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<Mediator> mediator;
  std::vector<model::ProviderId> candidates;
  CandidateSet candidate_set{&candidates};
  model::Query query;
  model::QueryId next_id = 0;
};

/// The exact (seed-pipeline) score of one candidate, recomputed from the
/// decision's own intentions — the oracle for FP-tie adjudication.
double ExactScoreOf(const KernelHarness& h, const SbqaParams& params,
                    model::ProviderId p, double pi, double ci) {
  double omega = params.fixed_omega;
  if (params.omega_mode == OmegaMode::kAdaptive) {
    const Consumer& consumer = h.registry.consumer(0);
    const double cs = consumer.satisfaction_tracker().sample_count() == 0
                          ? params.cold_start_consumer_satisfaction
                          : consumer.satisfaction();
    omega = AdaptiveOmega(cs, h.registry.provider(p).satisfaction());
  }
  return ProviderScore(pi, ci, omega, params.epsilon);
}

TEST(ScoreKernelTest, KindNamesRoundTrip) {
  EXPECT_STREQ(ToString(ScoreKernelKind::kExact), "exact");
  EXPECT_STREQ(ToString(ScoreKernelKind::kBatched), "batched");
  ScoreKernelKind kind = ScoreKernelKind::kExact;
  EXPECT_TRUE(ScoreKernelKindFromName("batched", &kind));
  EXPECT_EQ(kind, ScoreKernelKind::kBatched);
  EXPECT_TRUE(ScoreKernelKindFromName("exact", &kind));
  EXPECT_EQ(kind, ScoreKernelKind::kExact);
  EXPECT_FALSE(ScoreKernelKindFromName("fast", &kind));
  EXPECT_EQ(kind, ScoreKernelKind::kExact);  // untouched on failure
}

/// kExact must be bit-identical to the seed pipeline: recompute phase 2 by
/// hand (mediator intention helpers + AdaptiveOmega + ProviderScore +
/// RankByScore + prefix take) from the decision's consulted order and
/// compare every double with == (phase 2 consumes no randomness, so the
/// post-hoc recompute sees identical inputs).
TEST(ScoreKernelTest, ExactKernelMatchesSeedReferencePipeline) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    KernelHarness h(24, seed, ScoreKernelKind::kExact);
    SbqaParams params;
    params.knbest = KnBestParams{12, 6};
    params.scoring_kernel = ScoreKernelKind::kExact;
    SbqaMethod method(params);
    for (int round = 0; round < 6; ++round) {
      const int n_results = 1 + round % 3;
      const AllocationDecision d = h.Allocate(method, n_results);
      ASSERT_EQ(d.consulted.size(), 6u);

      const std::vector<double> pi =
          h.mediator->ComputeProviderIntentions(h.query, d.consulted);
      const std::vector<double> ci =
          h.mediator->ComputeConsumerIntentions(h.query, d.consulted);
      ASSERT_EQ(d.provider_intentions.size(), pi.size());
      ASSERT_EQ(d.consumer_intentions.size(), ci.size());
      std::vector<ScoredProvider> scored;
      for (size_t i = 0; i < d.consulted.size(); ++i) {
        EXPECT_EQ(d.provider_intentions[i], pi[i]);
        EXPECT_EQ(d.consumer_intentions[i], ci[i]);
        ScoredProvider sp;
        sp.provider = static_cast<int32_t>(d.consulted[i]);
        sp.provider_intention = pi[i];
        sp.consumer_intention = ci[i];
        sp.score = ExactScoreOf(h, params, d.consulted[i], pi[i], ci[i]);
        scored.push_back(sp);
      }
      RankByScore(&scored);
      const size_t take =
          std::min(static_cast<size_t>(n_results), scored.size());
      ASSERT_EQ(d.selected.size(), take);
      for (size_t i = 0; i < take; ++i) {
        EXPECT_EQ(d.selected[i],
                  static_cast<model::ProviderId>(scored[i].provider));
      }
    }
  }
}

/// Differential fuzz: identical populations and RNG streams, one method per
/// kernel. Consulted sets must match exactly (phase 1 is kernel-blind);
/// intentions agree to 1e-12; selected sets agree except inside FP ties,
/// adjudicated with the exact-score oracle at 1e-9.
TEST(ScoreKernelDifferentialTest, FuzzRankAgreement) {
  const model::ConsumerPolicyKind consumer_kinds[3] = {
      model::ConsumerPolicyKind::kPreferenceOnly,
      model::ConsumerPolicyKind::kReputationTrading,
      model::ConsumerPolicyKind::kResponseTimeOnly,
  };
  int compared = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const model::ConsumerPolicyKind consumer_kind = consumer_kinds[seed % 3];
    SbqaParams params;
    params.knbest = KnBestParams{16, 8};
    if (seed % 2 == 0) {
      params.omega_mode = OmegaMode::kFixed;
      params.fixed_omega = static_cast<double>(seed % 5) / 4.0;
    }
    KernelHarness he(32, seed, ScoreKernelKind::kExact, consumer_kind);
    KernelHarness hb(32, seed, ScoreKernelKind::kBatched, consumer_kind);
    SbqaParams pe = params;
    pe.scoring_kernel = ScoreKernelKind::kExact;
    SbqaParams pb = params;
    pb.scoring_kernel = ScoreKernelKind::kBatched;
    SbqaMethod me(pe);
    SbqaMethod mb(pb);
    for (int round = 0; round < 8; ++round) {
      const int n_results = 1 + round % 4;
      const double cost = 0.5 + 0.5 * (round % 3);
      const AllocationDecision de = he.Allocate(me, n_results, cost);
      const AllocationDecision db = hb.Allocate(mb, n_results, cost);
      ASSERT_EQ(de.consulted, db.consulted);
      ASSERT_EQ(de.selected.size(), db.selected.size());
      EXPECT_NEAR(de.ect_normalizer, db.ect_normalizer, 1e-12);
      for (size_t i = 0; i < de.consulted.size(); ++i) {
        EXPECT_NEAR(de.provider_intentions[i], db.provider_intentions[i],
                    1e-12);
        EXPECT_NEAR(de.consumer_intentions[i], db.consumer_intentions[i],
                    1e-12);
      }
      // Index of each consulted provider for score lookups.
      std::map<model::ProviderId, size_t> lane;
      for (size_t i = 0; i < de.consulted.size(); ++i) {
        lane[de.consulted[i]] = i;
      }
      for (size_t i = 0; i < de.selected.size(); ++i) {
        if (de.selected[i] == db.selected[i]) continue;
        // A rank divergence is only legal inside an FP tie: the exact
        // scores of the two picks must be within 1e-9.
        const size_t le = lane.at(de.selected[i]);
        const size_t lb = lane.at(db.selected[i]);
        const double score_e =
            ExactScoreOf(he, params, de.selected[i],
                         de.provider_intentions[le],
                         de.consumer_intentions[le]);
        const double score_b =
            ExactScoreOf(he, params, db.selected[i],
                         de.provider_intentions[lb],
                         de.consumer_intentions[lb]);
        EXPECT_NEAR(score_e, score_b, 1e-9)
            << "rank divergence outside an FP tie at seed " << seed
            << " round " << round << " position " << i;
      }
      ++compared;
    }
  }
  EXPECT_EQ(compared, 24 * 8);
}

/// Tie-heavy population (every lane identical): allocation frequencies
/// under the two kernels must be distribution-equivalent. Both kernels
/// break exact ties by provider id, so the winner histograms over the
/// random Kn samples should be statistically indistinguishable — gated
/// with a chi-squared statistic far below the df=63 critical value, in the
/// style of core_knbest_distribution_test.
TEST(ScoreKernelDifferentialTest, TieHeavyChiSquaredDistributionEquivalence) {
  constexpr int kProviders = 64;
  constexpr int kRounds = 4000;
  auto winner_counts = [&](ScoreKernelKind kind) {
    KernelHarness h(kProviders, /*seed=*/99, kind,
                    model::ConsumerPolicyKind::kReputationTrading,
                    /*diversify=*/false);
    // Uniform mutual interest: every pair scores identically.
    for (int i = 0; i < kProviders; ++i) {
      h.registry.consumer(0).preferences().Set(i, 0.6);
      h.registry.provider(i).preferences().Set(0, 0.4);
    }
    SbqaParams params;
    params.knbest = KnBestParams{8, 4};
    params.scoring_kernel = kind;
    SbqaMethod method(params);
    std::vector<int> counts(kProviders, 0);
    for (int round = 0; round < kRounds; ++round) {
      const AllocationDecision d = h.Allocate(method, 1);
      EXPECT_EQ(d.selected.size(), 1u);
      ++counts[static_cast<size_t>(d.selected[0])];
    }
    return counts;
  };
  const std::vector<int> exact = winner_counts(ScoreKernelKind::kExact);
  const std::vector<int> batched = winner_counts(ScoreKernelKind::kBatched);
  double chi_squared = 0;
  int winners_seen = 0;
  for (int i = 0; i < kProviders; ++i) {
    if (exact[i] > 0) ++winners_seen;
    const double expected = std::max(1.0, static_cast<double>(exact[i]));
    const double diff = static_cast<double>(batched[i] - exact[i]);
    chi_squared += diff * diff / expected;
  }
  // Chi-squared critical value for df = 63 at p = 0.999 is ~103.4; equal
  // tie-break rules should land far below it (identical samples give 0).
  EXPECT_LT(chi_squared, 103.4);
  // Sanity: the tie-heavy setup actually spreads wins across the
  // population (winner = min id of each random Kn sample).
  EXPECT_GT(winners_seen, kProviders / 2);
}

/// Same seed, same kernel => bit-identical decision streams, including
/// after satisfaction feedback (golden-seed determinism for both kernels).
TEST(ScoreKernelDeterminismTest, GoldenSeedBitIdenticalPerKernel) {
  for (ScoreKernelKind kind :
       {ScoreKernelKind::kExact, ScoreKernelKind::kBatched}) {
    auto run = [&] {
      KernelHarness h(20, /*seed=*/7, kind);
      SbqaParams params;
      params.knbest = KnBestParams{10, 5};
      params.scoring_kernel = kind;
      SbqaMethod method(params);
      std::vector<uint64_t> trace;
      for (int round = 0; round < 50; ++round) {
        const AllocationDecision d = h.Allocate(method, 2);
        for (model::ProviderId p : d.selected) {
          trace.push_back(static_cast<uint64_t>(p));
        }
        for (size_t i = 0; i < d.consulted.size(); ++i) {
          trace.push_back(std::bit_cast<uint64_t>(d.provider_intentions[i]));
          trace.push_back(std::bit_cast<uint64_t>(d.consumer_intentions[i]));
          h.registry.provider(d.consulted[i])
              .satisfaction_tracker()
              .RecordProposal(d.provider_intentions[i],
                              d.consulted[i] == d.selected[0]);
        }
      }
      return trace;
    };
    const std::vector<uint64_t> first = run();
    const std::vector<uint64_t> second = run();
    EXPECT_EQ(first, second) << "kernel " << ToString(kind);
  }
}

/// The dispatch-path rescore: in the decision's normalization context it
/// must equal the seed consumer-intention formula with max_ect =
/// ect_normalizer; with no context (<= 0) it falls back to the provider's
/// own expected completion (the seed scalar helper, bit for bit on the
/// exact kernel).
TEST(ScoreKernelTest, RescoreConsumerIntentionUsesDecisionContext) {
  for (ScoreKernelKind kind :
       {ScoreKernelKind::kExact, ScoreKernelKind::kBatched}) {
    KernelHarness h(8, /*seed=*/5, kind,
                    model::ConsumerPolicyKind::kResponseTimeOnly);
    ScoreKernel kernel(kind);
    h.query.id = 1;
    h.query.consumer = 0;
    h.query.cost = 2.0;
    const model::ProviderId p = 3;
    const double ect =
        h.mediator->ViewedBacklog(p) +
        h.query.cost / h.registry.hot().capacity(static_cast<uint32_t>(p));
    const Consumer& consumer = h.registry.consumer(0);

    const double in_context = kernel.RescoreConsumerIntention(
        *h.mediator, h.query, p, /*ect_normalizer=*/10.0 * ect);
    const double want_in_context = consumer.ComputeIntention(
        h.query, p, h.reputation->Get(p), ect, 10.0 * ect);
    const double fallback =
        kernel.RescoreConsumerIntention(*h.mediator, h.query, p, 0.0);
    const double want_fallback =
        h.mediator->ComputeConsumerIntention(h.query, p);
    if (kind == ScoreKernelKind::kExact) {
      EXPECT_EQ(in_context, want_in_context);
      EXPECT_EQ(fallback, want_fallback);
    } else {
      EXPECT_NEAR(in_context, want_in_context, 1e-12);
      EXPECT_NEAR(fallback, want_fallback, 1e-12);
    }
    // A farther normalization horizon makes the same backlog look better.
    EXPECT_GT(in_context, fallback - 1e-12);
  }
}

/// Phase accounting: decisions count always; per-phase timings only
/// accumulate when enabled.
TEST(ScoreKernelTest, PhaseTimingAccounting) {
  KernelHarness h(16, /*seed=*/11, ScoreKernelKind::kBatched);
  SbqaParams params;
  params.knbest = KnBestParams{8, 4};
  params.scoring_kernel = ScoreKernelKind::kBatched;
  SbqaMethod silent(params);
  for (int i = 0; i < 5; ++i) h.Allocate(silent, 1);
  EXPECT_EQ(silent.kernel().phases().decisions, 5);
  EXPECT_EQ(silent.kernel().phases().total_ns(), 0.0);

  params.decision_timing = true;
  SbqaMethod timed(params);
  for (int i = 0; i < 5; ++i) h.Allocate(timed, 1);
  EXPECT_EQ(timed.kernel().phases().decisions, 5);
  EXPECT_GT(timed.kernel().phases().total_ns(), 0.0);
  EXPECT_GT(timed.kernel().phases().sample_ns, 0.0);
  ScoreKernelPhases copy = timed.kernel().phases();
  copy.Accumulate(timed.kernel().phases());
  EXPECT_EQ(copy.decisions, 10);
  timed.kernel().ResetPhases();
  EXPECT_EQ(timed.kernel().phases().decisions, 0);
}

}  // namespace
}  // namespace sbqa::core
