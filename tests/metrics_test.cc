// Tests for the time series and the metrics collector.

#include "metrics/collector.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/sbqa.h"
#include "metrics/timeseries.h"
#include "model/reputation.h"

namespace sbqa::metrics {
namespace {

TEST(TimeSeriesTest, AddAndQuery) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.last_value(7.0), 7.0);
  ts.Add(0, 1.0);
  ts.Add(10, 3.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.last_value(), 3.0);
  EXPECT_DOUBLE_EQ(ts.MeanValue(), 2.0);
}

/// A complete little system driven through the collector.
struct CollectorHarness {
  CollectorHarness() {
    sim::SimulationConfig config;
    config.seed = 11;
    simulation = std::make_unique<sim::Simulation>(config);
    core::ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    registry.AddConsumer(consumer_params);
    for (int i = 0; i < 4; ++i) {
      core::ProviderParams params;
      params.capacity = 1.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      registry.AddProvider(params);
      registry.consumer(0).preferences().Set(i, 0.5);
      registry.provider(i).preferences().Set(0, 0.5);
    }
    reputation = std::make_unique<model::ReputationRegistry>(4);
    core::MediatorConfig mediator_config;
    mediator_config.simulate_network = false;
    mediator = std::make_unique<core::Mediator>(
        simulation.get(), &registry, reputation.get(),
        std::make_unique<core::SbqaMethod>(core::SbqaParams{}),
        mediator_config);
  }

  void SubmitAt(double when, double cost = 1.0) {
    simulation->scheduler().ScheduleAt(when, [this, cost] {
      model::Query q;
      q.id = ++last_id;
      q.consumer = 0;
      q.n_results = 1;
      q.cost = cost;
      mediator->SubmitQuery(q);
    });
  }

  std::unique_ptr<sim::Simulation> simulation;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<core::Mediator> mediator;
  model::QueryId last_id = 0;
};

TEST(CollectorTest, SamplesAtConfiguredCadence) {
  CollectorHarness h;
  Collector collector(h.simulation.get(), &h.registry, h.mediator.get(),
                      /*sample_interval=*/5.0);
  collector.Start(/*until=*/50.0);
  h.simulation->RunUntil(50.0);
  // Baseline snapshot at t=0 plus one every 5s through t=50.
  EXPECT_EQ(collector.series().consumer_satisfaction.size(), 11u);
  EXPECT_DOUBLE_EQ(collector.series().consumer_satisfaction.times().front(),
                   0.0);
  EXPECT_DOUBLE_EQ(collector.series().consumer_satisfaction.times().back(),
                   50.0);
}

TEST(CollectorTest, TracksCompletedQueries) {
  CollectorHarness h;
  Collector collector(h.simulation.get(), &h.registry, h.mediator.get(), 10.0);
  collector.Start(100.0);
  for (int i = 0; i < 10; ++i) h.SubmitAt(i * 2.0);
  h.simulation->RunUntil(100.0);
  const RunSummary summary = collector.Summarize(100.0);
  EXPECT_EQ(summary.queries_finalized, 10);
  EXPECT_DOUBLE_EQ(summary.throughput, 0.1);
  EXPECT_GT(summary.mean_response_time, 0.0);
  // Preference 0.5 everywhere: δs(c,q) = 0.75 exactly.
  EXPECT_NEAR(summary.consumer_satisfaction, 0.75, 1e-9);
  EXPECT_EQ(summary.method, "SbQA");
}

TEST(CollectorTest, AliveCountsReflectDepartures) {
  CollectorHarness h;
  Collector collector(h.simulation.get(), &h.registry, h.mediator.get(), 1.0);
  collector.Start(10.0);
  h.simulation->scheduler().ScheduleAt(
      4.5, [&h] { h.registry.provider(0).set_alive(false); });
  h.simulation->RunUntil(10.0);
  const auto& alive = collector.series().alive_providers;
  EXPECT_DOUBLE_EQ(alive.values().front(), 4.0);
  EXPECT_DOUBLE_EQ(alive.values().back(), 3.0);
  const RunSummary summary = collector.Summarize(10.0);
  EXPECT_DOUBLE_EQ(summary.provider_retention, 0.75);
  EXPECT_DOUBLE_EQ(summary.capacity_retention, 0.75);
}

TEST(CollectorTest, ParticipantSnapshotsExposeState) {
  CollectorHarness h;
  Collector collector(h.simulation.get(), &h.registry, h.mediator.get(), 10.0);
  collector.Start(50.0);
  h.SubmitAt(1.0);
  h.simulation->RunUntil(50.0);
  const auto consumers = collector.ConsumerSnapshots();
  ASSERT_EQ(consumers.size(), 1u);
  EXPECT_EQ(consumers[0].interactions, 1);
  EXPECT_NEAR(consumers[0].satisfaction, 0.75, 1e-9);
  const auto providers = collector.ProviderSnapshots();
  ASSERT_EQ(providers.size(), 4u);
  int64_t total_performed = 0;
  for (const auto& p : providers) total_performed += p.performed;
  EXPECT_EQ(total_performed, 1);
}

TEST(CollectorTest, ValidatedFractionComputed) {
  CollectorHarness h;
  Collector collector(h.simulation.get(), &h.registry, h.mediator.get(), 10.0);
  collector.Start(50.0);
  for (int i = 0; i < 5; ++i) h.SubmitAt(i * 1.0);
  h.simulation->RunUntil(50.0);
  // No faulty providers: everything validates.
  EXPECT_DOUBLE_EQ(collector.Summarize(50.0).validated_fraction, 1.0);
}

TEST(CollectorDeathTest, InvalidIntervalAborts) {
  CollectorHarness h;
  EXPECT_DEATH(Collector(h.simulation.get(), &h.registry, h.mediator.get(),
                         0.0),
               "CHECK failed");
}

}  // namespace
}  // namespace sbqa::metrics
