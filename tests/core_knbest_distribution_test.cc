// Seeded distribution tests proving the O(k) two-phase selection
// (Floyd/partial-Fisher-Yates K-sample + nth_element with random tie keys)
// is distribution-equivalent to the original formulation (uniform shuffle +
// stable sort over all candidates): uniform K-sample, exact kn
// least-utilized filtering, uniformly random tie-breaking.

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/knbest.h"
#include "util/rng.h"

namespace sbqa::core {
namespace {

std::vector<model::ProviderId> Ids(int n) {
  std::vector<model::ProviderId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(i);
  return ids;
}

/// The seed repository's reference implementation: full iota + shuffle +
/// stable_sort. Kept here as the distribution oracle.
std::vector<model::ProviderId> ReferenceSelectKnBest(
    const std::vector<model::ProviderId>& candidates,
    const std::vector<double>& backlogs, const KnBestParams& params,
    util::Rng& rng) {
  if (candidates.empty()) return {};
  std::vector<size_t> indices(candidates.size());
  std::iota(indices.begin(), indices.end(), 0u);
  const bool sample_all =
      params.k_candidates == 0 || params.k_candidates >= candidates.size();
  std::vector<size_t> k_set;
  if (sample_all) {
    k_set = std::move(indices);
    rng.Shuffle(&k_set);
  } else {
    k_set = rng.SampleWithoutReplacement(std::move(indices),
                                         params.k_candidates);
  }
  std::stable_sort(k_set.begin(), k_set.end(),
                   [&backlogs](size_t a, size_t b) {
                     return backlogs[a] < backlogs[b];
                   });
  const size_t keep = params.kn_best == 0
                          ? k_set.size()
                          : std::min(params.kn_best, k_set.size());
  std::vector<model::ProviderId> kn;
  kn.reserve(keep);
  for (size_t i = 0; i < keep; ++i) kn.push_back(candidates[k_set[i]]);
  return kn;
}

using Frequency = std::map<model::ProviderId, double>;

/// Per-provider membership frequency of Kn over `rounds` selections.
Frequency MembershipFrequency(
    const std::vector<model::ProviderId>& candidates,
    const std::vector<double>& backlogs, const KnBestParams& params,
    uint64_t seed, int rounds, bool reference) {
  util::Rng rng(seed);
  Frequency freq;
  for (int round = 0; round < rounds; ++round) {
    const auto kn = reference
                        ? ReferenceSelectKnBest(candidates, backlogs, params, rng)
                        : SelectKnBest(candidates, backlogs, params, rng);
    for (model::ProviderId p : kn) freq[p] += 1.0 / rounds;
  }
  return freq;
}

/// First-slot frequency (the position randomized tie-breaking feeds).
Frequency FirstSlotFrequency(
    const std::vector<model::ProviderId>& candidates,
    const std::vector<double>& backlogs, const KnBestParams& params,
    uint64_t seed, int rounds, bool reference) {
  util::Rng rng(seed);
  Frequency freq;
  for (int round = 0; round < rounds; ++round) {
    const auto kn = reference
                        ? ReferenceSelectKnBest(candidates, backlogs, params, rng)
                        : SelectKnBest(candidates, backlogs, params, rng);
    if (!kn.empty()) freq[kn.front()] += 1.0 / rounds;
  }
  return freq;
}

void ExpectClose(const Frequency& a, const Frequency& b, double tolerance) {
  std::set<model::ProviderId> keys;
  for (const auto& [id, f] : a) keys.insert(id);
  for (const auto& [id, f] : b) keys.insert(id);
  for (model::ProviderId id : keys) {
    const double fa = a.contains(id) ? a.at(id) : 0.0;
    const double fb = b.contains(id) ? b.at(id) : 0.0;
    EXPECT_NEAR(fa, fb, tolerance) << "provider " << id;
  }
}

TEST(KnBestDistributionTest, KSampleMembershipMatchesReference) {
  // Uniform K-sampling with a load filter that keeps everything: Kn
  // membership is exactly the K-sample, so the frequencies must be uniform
  // k/n for both implementations.
  const auto ids = Ids(40);
  const std::vector<double> backlogs(40, 1.0);
  const KnBestParams params{6, 0};
  const int rounds = 20000;
  const Frequency ours =
      MembershipFrequency(ids, backlogs, params, 101, rounds, false);
  const Frequency ref =
      MembershipFrequency(ids, backlogs, params, 202, rounds, true);
  ExpectClose(ours, ref, 0.012);
  for (const auto& [id, f] : ours) EXPECT_NEAR(f, 6.0 / 40.0, 0.012);
}

TEST(KnBestDistributionTest, LeastUtilizedFilterIsExact) {
  // Distinct backlogs, k = everyone: the kn least utilized must be chosen
  // deterministically (no distribution involved), in ascending order.
  const auto ids = Ids(30);
  std::vector<double> backlogs;
  for (int i = 0; i < 30; ++i) backlogs.push_back((29 - i) * 0.5);
  util::Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    const auto kn = SelectKnBest(ids, backlogs, KnBestParams{0, 5}, rng);
    EXPECT_EQ(kn, (std::vector<model::ProviderId>{29, 28, 27, 26, 25}));
  }
}

TEST(KnBestDistributionTest, TieBreakingIsUniformAndMatchesReference) {
  // All backlogs equal, k = everyone, kn = 1: the survivor is a pure tie
  // draw. Both implementations must put every provider in the first slot
  // with probability 1/n.
  const auto ids = Ids(12);
  const std::vector<double> backlogs(12, 3.0);
  const KnBestParams params{0, 1};
  const int rounds = 24000;
  const Frequency ours =
      FirstSlotFrequency(ids, backlogs, params, 303, rounds, false);
  const Frequency ref =
      FirstSlotFrequency(ids, backlogs, params, 404, rounds, true);
  EXPECT_EQ(ours.size(), 12u);
  ExpectClose(ours, ref, 0.012);
  for (const auto& [id, f] : ours) EXPECT_NEAR(f, 1.0 / 12.0, 0.012);
}

TEST(KnBestDistributionTest, PartialTieGroupSharesTheMarginalSlot) {
  // Providers 0-3 idle, 4-11 equally loaded; kn = 6 keeps all four idle
  // providers plus two drawn uniformly from the loaded tie group — the
  // composite case exercising nth_element across a tie boundary.
  const auto ids = Ids(12);
  std::vector<double> backlogs(12, 8.0);
  for (int i = 0; i < 4; ++i) backlogs[static_cast<size_t>(i)] = 0.0;
  const KnBestParams params{0, 6};
  const int rounds = 16000;
  const Frequency ours =
      MembershipFrequency(ids, backlogs, params, 505, rounds, false);
  const Frequency ref =
      MembershipFrequency(ids, backlogs, params, 606, rounds, true);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(ours.at(i), 1.0, 1e-12);  // idle group always survives
  }
  for (int i = 4; i < 12; ++i) {
    EXPECT_NEAR(ours.at(i), 2.0 / 8.0, 0.015);  // 2 slots over 8 tied
  }
  ExpectClose(ours, ref, 0.015);
}

TEST(KnBestDistributionTest, SampledTwoPhaseMatchesReferenceEndToEnd) {
  // The full pipeline under heterogeneous load: k = 8 of 24, kn = 3. The
  // membership distribution couples sampling and filtering; the new O(k)
  // path must reproduce the reference within sampling noise.
  const auto ids = Ids(24);
  std::vector<double> backlogs;
  util::Rng setup(1);
  for (int i = 0; i < 24; ++i) {
    backlogs.push_back(i % 3 == 0 ? 0.0 : setup.Uniform(1.0, 10.0));
  }
  const KnBestParams params{8, 3};
  const int rounds = 30000;
  const Frequency ours =
      MembershipFrequency(ids, backlogs, params, 707, rounds, false);
  const Frequency ref =
      MembershipFrequency(ids, backlogs, params, 808, rounds, true);
  ExpectClose(ours, ref, 0.015);
}

TEST(KnBestDistributionTest, SeededRunsAreDeterministic) {
  const auto ids = Ids(20);
  std::vector<double> backlogs;
  util::Rng setup(2);
  for (int i = 0; i < 20; ++i) backlogs.push_back(setup.Uniform(0, 5));
  const KnBestParams params{10, 4};
  util::Rng rng_a(42), rng_b(42);
  for (int round = 0; round < 200; ++round) {
    EXPECT_EQ(SelectKnBest(ids, backlogs, params, rng_a),
              SelectKnBest(ids, backlogs, params, rng_b));
  }
}

}  // namespace
}  // namespace sbqa::core
