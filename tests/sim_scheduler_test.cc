// Tests for the discrete-event scheduler.

#include "sim/scheduler.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace sbqa::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.Schedule(3.0, [&] { order.push_back(3); });
  s.Schedule(1.0, [&] { order.push_back(1); });
  s.Schedule(2.0, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(SchedulerTest, SimultaneousEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, StepAdvancesClockToEventTime) {
  Scheduler s;
  s.Schedule(5.0, [] {});
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(s.now(), 5.0);
  EXPECT_FALSE(s.Step());
  EXPECT_EQ(s.now(), 5.0);  // empty step does not advance
}

TEST(SchedulerTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Scheduler s;
  EXPECT_EQ(s.RunUntil(10.0), 0u);
  EXPECT_EQ(s.now(), 10.0);
}

TEST(SchedulerTest, RunUntilExecutesOnlyDueEvents) {
  Scheduler s;
  int fired = 0;
  s.Schedule(1.0, [&] { ++fired; });
  s.Schedule(2.0, [&] { ++fired; });
  s.Schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(s.RunUntil(2.5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 2.5);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, RunUntilBoundaryIsInclusive) {
  Scheduler s;
  int fired = 0;
  s.Schedule(2.0, [&] { ++fired; });
  s.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, RunForIsRelative) {
  Scheduler s;
  s.RunUntil(5.0);
  int fired = 0;
  s.Schedule(1.0, [&] { ++fired; });
  s.RunFor(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 7.0);
}

TEST(SchedulerTest, SelfSchedulingCallbacksAreSafe) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&]() {
    if (++count < 100) s.Schedule(1.0, tick);
  };
  s.Schedule(1.0, tick);
  s.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.now(), 100.0);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  const EventId id = s.Schedule(1.0, [&] { ++fired; });
  EXPECT_TRUE(s.Cancel(id));
  s.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SchedulerTest, CancelTwiceFails) {
  Scheduler s;
  const EventId id = s.Schedule(1.0, [] {});
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SchedulerTest, CancelUnknownIdFails) {
  Scheduler s;
  EXPECT_FALSE(s.Cancel(0));
  EXPECT_FALSE(s.Cancel(12345));
}

TEST(SchedulerTest, CancelAfterExecutionFailsAndDoesNotLeak) {
  // Regression: cancelling an id whose event already ran used to park the
  // id in the lazy-cancellation set forever.
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(s.Schedule(1.0, [] {}));
  s.Run();
  for (EventId id : ids) EXPECT_FALSE(s.Cancel(id));
  EXPECT_EQ(s.cancelled_backlog(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, CancelledBacklogDrainsOnPop) {
  Scheduler s;
  const EventId a = s.Schedule(1.0, [] {});
  s.Schedule(2.0, [] {});
  EXPECT_TRUE(s.Cancel(a));
  EXPECT_EQ(s.cancelled_backlog(), 1u);
  s.Run();
  EXPECT_EQ(s.cancelled_backlog(), 0u);
  // Double-cancel after the drain still fails without re-inserting.
  EXPECT_FALSE(s.Cancel(a));
  EXPECT_EQ(s.cancelled_backlog(), 0u);
}

TEST(SchedulerTest, MixedCancelPatternStaysBounded) {
  // Interleaved schedule/run/cancel cycles: the cancellation set must stay
  // bounded by the live queue size at all times.
  Scheduler s;
  std::vector<EventId> executed_ids;
  for (int cycle = 0; cycle < 50; ++cycle) {
    const EventId live = s.Schedule(1.0, [] {});
    const EventId dead = s.Schedule(1.0, [] {});
    EXPECT_TRUE(s.Cancel(dead));
    s.Run();
    executed_ids.push_back(live);
    // Stale cancels of everything that ever ran.
    for (EventId id : executed_ids) EXPECT_FALSE(s.Cancel(id));
    EXPECT_EQ(s.cancelled_backlog(), 0u);
  }
}

TEST(SchedulerTest, CancelledEventsDontCountAsPending) {
  Scheduler s;
  const EventId id = s.Schedule(1.0, [] {});
  s.Schedule(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.Cancel(id);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_FALSE(s.empty());
}

TEST(SchedulerTest, ScheduleAtAbsoluteTime) {
  Scheduler s;
  double fired_at = -1;
  s.ScheduleAt(4.0, [&] { fired_at = s.now(); });
  s.Run();
  EXPECT_EQ(fired_at, 4.0);
}

TEST(SchedulerTest, RunRespectsMaxEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&]() {
    ++count;
    s.Schedule(1.0, tick);
  };
  s.Schedule(1.0, tick);
  s.Run(50);
  EXPECT_EQ(count, 50);
}

TEST(SchedulerTest, RequestStopHaltsRun) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&]() {
    if (++count == 10) {
      s.RequestStop();
    } else {
      s.Schedule(1.0, tick);
    }
  };
  s.Schedule(1.0, tick);
  s.Run();
  EXPECT_EQ(count, 10);
}

TEST(SchedulerTest, ExecutedCountAccumulates) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.Schedule(1.0, [] {});
  s.Run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST(SchedulerTest, ZeroDelayEventRunsAtCurrentTime) {
  Scheduler s;
  s.RunUntil(3.0);
  double fired_at = -1;
  s.Schedule(0.0, [&] { fired_at = s.now(); });
  s.Run();
  EXPECT_EQ(fired_at, 3.0);
}

TEST(SchedulerDeathTest, NegativeDelayAborts) {
  Scheduler s;
  EXPECT_DEATH(s.Schedule(-1.0, [] {}), "CHECK failed");
}

TEST(SchedulerDeathTest, ScheduleInThePastAborts) {
  Scheduler s;
  s.RunUntil(5.0);
  EXPECT_DEATH(s.ScheduleAt(4.0, [] {}), "CHECK failed");
}

TEST(SchedulerTest, StaleIdOfRecycledSlotCannotCancelNewOccupant) {
  // Slot-generation regression: cancel event A (freeing its pool slot),
  // schedule B (which recycles the slot) — A's id must stay dead and must
  // not be able to cancel B.
  Scheduler s;
  const EventId a = s.Schedule(1.0, [] {});
  EXPECT_TRUE(s.Cancel(a));
  bool b_fired = false;
  const EventId b = s.Schedule(2.0, [&] { b_fired = true; });
  EXPECT_NE(a, b);  // the recycled slot carries a new generation
  EXPECT_FALSE(s.Cancel(a));
  s.Run();
  EXPECT_TRUE(b_fired);
}

TEST(SchedulerTest, StaleIdAfterExecutionCannotCancelRecycledSlot) {
  Scheduler s;
  const EventId a = s.Schedule(1.0, [] {});
  s.Run();  // a fired; its slot is free
  int b_fired = 0;
  const EventId b = s.Schedule(1.0, [&] { ++b_fired; });
  EXPECT_FALSE(s.Cancel(a));  // stale id, recycled slot: must be a no-op
  s.Run();
  EXPECT_EQ(b_fired, 1);
  (void)b;
}

TEST(SchedulerTest, SlotPoolIsRecycledNotGrown) {
  // Steady-state scheduling must reuse slots: the pool's high-water mark is
  // the max number of concurrently pending events, not the total scheduled.
  Scheduler s;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 4; ++i) s.Schedule(1.0, [] {});
    s.Run();
  }
  EXPECT_LE(s.slot_capacity(), 4u);
}

TEST(SchedulerTest, GoldenSeedDeterminismAgainstReferenceModel) {
  // The slot-versioned rewrite must execute a pseudo-random
  // schedule/cancel workload in exactly the order the specification
  // demands: ascending (timestamp, submission index), cancelled events
  // skipped. The reference model reproduces the pre-rewrite semantics
  // (stable sort over live events), so any engine change that alters
  // same-timestamp FIFO order or cancellation behavior fails this test.
  struct RefEvent {
    double when;
    int label;
    bool cancelled = false;
  };
  Scheduler s;
  std::vector<RefEvent> reference;
  std::vector<EventId> ids;
  std::vector<int> executed;

  unsigned state = 0xC0FFEEu;  // fixed golden seed
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 8;
  };
  for (int i = 0; i < 500; ++i) {
    const double when = static_cast<double>(next() % 100) / 4.0;
    reference.push_back({when, i});
    ids.push_back(s.Schedule(when, [&executed, i] { executed.push_back(i); }));
    if (next() % 4 == 0) {
      const size_t victim = next() % ids.size();
      const bool engine_cancelled = s.Cancel(ids[victim]);
      const bool ref_cancelled =
          !reference[victim].cancelled;  // live events always cancellable
      reference[victim].cancelled = true;
      EXPECT_EQ(engine_cancelled, ref_cancelled);
    }
  }
  s.Run();

  std::vector<int> expected_order;
  {
    std::vector<RefEvent> live;
    for (const RefEvent& e : reference) {
      if (!e.cancelled) live.push_back(e);
    }
    std::stable_sort(live.begin(), live.end(),
                     [](const RefEvent& a, const RefEvent& b) {
                       return a.when < b.when;
                     });
    for (const RefEvent& e : live) expected_order.push_back(e.label);
  }
  EXPECT_EQ(executed, expected_order);
}

// Property: interleaved schedule/cancel/run sequences preserve ordering.
class SchedulerOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerOrderSweep, TimestampsNeverDecrease) {
  Scheduler s;
  std::vector<double> stamps;
  // A little deterministic pseudo-random pattern per param.
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % 1000;
  };
  for (int i = 0; i < 200; ++i) {
    const double when = static_cast<double>(next()) / 10.0;
    const EventId id =
        s.Schedule(when, [&stamps, &s] { stamps.push_back(s.now()); });
    if (next() % 5 == 0) s.Cancel(id);
  }
  s.Run();
  for (size_t i = 1; i < stamps.size(); ++i) {
    ASSERT_LE(stamps[i - 1], stamps[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, SchedulerOrderSweep,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace sbqa::sim
