// Tests for the baseline allocation methods.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/capacity_based.h"
#include "baselines/economic.h"
#include "baselines/interest_only.h"
#include "baselines/qlb.h"
#include "baselines/random_alloc.h"
#include "baselines/round_robin.h"
#include "core/mediator.h"
#include "core/sbqa.h"
#include "model/reputation.h"
#include "sim/simulation.h"

namespace sbqa::baselines {
namespace {

using core::AllocationContext;
using core::AllocationDecision;

/// Harness exposing a mediator without running queries through it, so
/// methods can be called directly with crafted provider states.
struct MethodHarness {
  explicit MethodHarness(int providers, uint64_t seed = 1) {
    sim::SimulationConfig config;
    config.seed = seed;
    simulation = std::make_unique<sim::Simulation>(config);
    core::ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    registry.AddConsumer(consumer_params);
    for (int i = 0; i < providers; ++i) {
      core::ProviderParams params;
      params.capacity = 1.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      registry.AddProvider(params);
    }
    reputation = std::make_unique<model::ReputationRegistry>(
        registry.provider_count());
    // The mediator's method is irrelevant; we call methods directly.
    mediator = std::make_unique<core::Mediator>(
        simulation.get(), &registry, reputation.get(),
        std::make_unique<core::SbqaMethod>(core::SbqaParams{}));
    for (int i = 0; i < providers; ++i) candidates.push_back(i);
  }

  AllocationDecision Allocate(core::AllocationMethod& method,
                              int n_results = 1, double cost = 1.0) {
    query.id = ++query_id;
    query.consumer = 0;
    query.n_results = n_results;
    query.cost = cost;
    AllocationContext ctx;
    ctx.query = &query;
    ctx.candidates = &candidate_set;
    ctx.mediator = mediator.get();
    ctx.now = simulation->now();
    AllocationDecision decision;
    method.Allocate(ctx, &decision);
    return decision;
  }

  std::unique_ptr<sim::Simulation> simulation;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<core::Mediator> mediator;
  std::vector<model::ProviderId> candidates;
  core::CandidateSet candidate_set{&candidates};
  model::Query query;
  model::QueryId query_id = 0;
};

bool Unique(const std::vector<model::ProviderId>& ids) {
  return std::set<model::ProviderId>(ids.begin(), ids.end()).size() ==
         ids.size();
}

// --- Random ---------------------------------------------------------------------

TEST(RandomMethodTest, SelectsRequestedCountWithoutDuplicates) {
  MethodHarness h(10);
  RandomMethod method;
  for (int round = 0; round < 50; ++round) {
    const AllocationDecision d = h.Allocate(method, 3);
    EXPECT_EQ(d.selected.size(), 3u);
    EXPECT_TRUE(Unique(d.selected));
    EXPECT_TRUE(d.consulted.empty());  // defaults to selected downstream
  }
}

TEST(RandomMethodTest, CoversAllProvidersEventually) {
  MethodHarness h(6);
  RandomMethod method;
  std::set<model::ProviderId> seen;
  for (int round = 0; round < 200; ++round) {
    for (model::ProviderId p : h.Allocate(method, 1).selected) seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 6u);
}

// --- RoundRobin ------------------------------------------------------------------

TEST(RoundRobinMethodTest, CyclesThroughProviders) {
  MethodHarness h(4);
  RoundRobinMethod method;
  std::vector<model::ProviderId> first_cycle;
  for (int i = 0; i < 4; ++i) {
    const AllocationDecision d = h.Allocate(method, 1);
    ASSERT_EQ(d.selected.size(), 1u);
    first_cycle.push_back(d.selected[0]);
  }
  EXPECT_TRUE(Unique(first_cycle));  // each provider exactly once per cycle
  // The next allocation wraps around to the start of the cycle.
  EXPECT_EQ(h.Allocate(method, 1).selected[0], first_cycle[0]);
}

TEST(RoundRobinMethodTest, MultiResultSpansConsecutive) {
  MethodHarness h(5);
  RoundRobinMethod method;
  const AllocationDecision d = h.Allocate(method, 3);
  EXPECT_EQ(d.selected.size(), 3u);
  EXPECT_TRUE(Unique(d.selected));
}

// --- CapacityBased -----------------------------------------------------------------

TEST(CapacityBasedTest, PrefersLeastBackloggedProvider) {
  MethodHarness h(4);
  h.registry.provider(0).Enqueue(0.0, 10.0);
  h.registry.provider(1).Enqueue(0.0, 5.0);
  h.registry.provider(3).Enqueue(0.0, 1.0);
  CapacityBasedMethod method;
  const AllocationDecision d = h.Allocate(method, 1);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 2);  // the idle one
}

TEST(CapacityBasedTest, TopNOrderedByBacklog) {
  MethodHarness h(4);
  h.registry.provider(0).Enqueue(0.0, 8.0);
  h.registry.provider(1).Enqueue(0.0, 4.0);
  h.registry.provider(2).Enqueue(0.0, 2.0);
  CapacityBasedMethod method;
  const AllocationDecision d = h.Allocate(method, 3);
  ASSERT_EQ(d.selected.size(), 3u);
  EXPECT_EQ(d.selected[0], 3);
  EXPECT_EQ(d.selected[1], 2);
  EXPECT_EQ(d.selected[2], 1);
}

TEST(CapacityBasedTest, RandomizesTies) {
  MethodHarness h(6);
  CapacityBasedMethod method;
  std::set<model::ProviderId> firsts;
  for (int round = 0; round < 200; ++round) {
    firsts.insert(h.Allocate(method, 1).selected[0]);
  }
  EXPECT_GT(firsts.size(), 3u);  // not always the same id on equal backlogs
}

// --- QLB ---------------------------------------------------------------------------

TEST(QlbTest, AccountsForHeterogeneousCapacity) {
  MethodHarness h(2);
  // Provider 0: capacity 1 (default). Rebuild provider 1 as a fast host by
  // giving provider 0 backlog such that ECT comparison flips.
  // ECT_0 = backlog + cost; with cost 4: 0 has ECT 4, provider 1 busy with
  // backlog 1 has ECT 5 -> picks 0. But with cost 0.5: 0 -> 0.5, 1 -> 1.5.
  h.registry.provider(1).Enqueue(0.0, 1.0);
  QlbMethod method;
  EXPECT_EQ(h.Allocate(method, 1, 4.0).selected[0], 0);
  EXPECT_EQ(h.Allocate(method, 1, 0.5).selected[0], 0);
}

TEST(QlbTest, PicksShortestExpectedCompletion) {
  MethodHarness h(3);
  h.registry.provider(0).Enqueue(0.0, 3.0);
  h.registry.provider(1).Enqueue(0.0, 1.0);
  h.registry.provider(2).Enqueue(0.0, 2.0);
  QlbMethod method;
  const AllocationDecision d = h.Allocate(method, 2, 1.0);
  ASSERT_EQ(d.selected.size(), 2u);
  EXPECT_EQ(d.selected[0], 1);
  EXPECT_EQ(d.selected[1], 2);
}

// --- Economic -----------------------------------------------------------------------

TEST(EconomicTest, BidGrowsWithUtilization) {
  MethodHarness h(2);
  h.registry.provider(1).Enqueue(0.0, 50.0);
  EconomicMethod method;
  h.query.consumer = 0;
  h.query.cost = 1.0;
  AllocationContext ctx;
  ctx.query = &h.query;
  ctx.candidates = &h.candidate_set;
  ctx.mediator = h.mediator.get();
  ctx.now = 0;
  EXPECT_LT(method.BidOf(ctx, 0), method.BidOf(ctx, 1));
}

TEST(EconomicTest, CheapestBidsWin) {
  MethodHarness h(3);
  h.registry.provider(0).Enqueue(0.0, 30.0);
  EconomicMethod method;
  const AllocationDecision d = h.Allocate(method, 2, 1.0);
  ASSERT_EQ(d.selected.size(), 2u);
  EXPECT_TRUE(d.used_bid_round);
  // The heavily loaded provider 0 must not be among the winners.
  for (model::ProviderId p : d.selected) EXPECT_NE(p, 0);
}

TEST(EconomicTest, BudgetExcludesExpensiveProviders) {
  MethodHarness h(2);
  // Saturate both providers so every bid exceeds the budget.
  h.registry.provider(0).Enqueue(0.0, 1000.0);
  h.registry.provider(1).Enqueue(0.0, 1000.0);
  EconomicParams params;
  params.budget_factor = 1.0;  // tight budget
  params.load_markup = 10.0;
  EconomicMethod method(params);
  const AllocationDecision d = h.Allocate(method, 2, 1.0);
  EXPECT_TRUE(d.selected.empty());  // nothing affordable
}

TEST(EconomicTest, InterestDiscountFavorsInterestedProvider) {
  MethodHarness h(2);
  h.registry.provider(0).preferences().Set(0, 0.9);
  h.registry.provider(1).preferences().Set(0, -0.9);
  EconomicParams params;
  params.interest_discount = 0.5;
  EconomicMethod method(params);
  h.query.consumer = 0;
  h.query.cost = 1.0;
  AllocationContext ctx;
  ctx.query = &h.query;
  ctx.candidates = &h.candidate_set;
  ctx.mediator = h.mediator.get();
  ctx.now = 0;
  EXPECT_LT(method.BidOf(ctx, 0), method.BidOf(ctx, 1));
}

TEST(EconomicDeathTest, InvalidParamsAbort) {
  EconomicParams bad;
  bad.price_per_second = 0;
  EXPECT_DEATH(EconomicMethod{bad}, "CHECK failed");
}

// --- InterestOnly -------------------------------------------------------------------

TEST(InterestOnlyTest, PicksBestMutualPreference) {
  MethodHarness h(3);
  h.registry.consumer(0).preferences().Set(0, 0.9);
  h.registry.consumer(0).preferences().Set(1, 0.9);
  h.registry.consumer(0).preferences().Set(2, -0.9);
  h.registry.provider(0).preferences().Set(0, 0.9);
  h.registry.provider(1).preferences().Set(0, 0.1);
  h.registry.provider(2).preferences().Set(0, 0.9);
  InterestOnlyMethod method;
  const AllocationDecision d = h.Allocate(method, 1);
  ASSERT_EQ(d.selected.size(), 1u);
  EXPECT_EQ(d.selected[0], 0);  // the only high-high pair
}

TEST(InterestOnlyTest, IgnoresLoadEntirely) {
  MethodHarness h(2);
  h.registry.consumer(0).preferences().Set(0, 0.9);
  h.registry.consumer(0).preferences().Set(1, 0.1);
  h.registry.provider(0).preferences().Set(0, 0.9);
  h.registry.provider(1).preferences().Set(0, 0.9);
  h.registry.provider(0).Enqueue(0.0, 1000.0);  // overloaded but loved
  InterestOnlyMethod method;
  EXPECT_EQ(h.Allocate(method, 1).selected[0], 0);
}

// --- KnBest standalone variants --------------------------------------------------------

TEST(KnBestMethodTest, GreedyFinalPicksLeastUtilizedOfKn) {
  MethodHarness h(6);
  h.registry.provider(0).Enqueue(0.0, 6.0);
  h.registry.provider(1).Enqueue(0.0, 5.0);
  h.registry.provider(2).Enqueue(0.0, 4.0);
  h.registry.provider(3).Enqueue(0.0, 3.0);
  h.registry.provider(4).Enqueue(0.0, 2.0);
  // Provider 5 idle. k = all, kn = 3 -> Kn = {5, 4, 3} by backlog.
  core::KnBestMethod method(core::KnBestParams{0, 3, /*greedy_final=*/true});
  const AllocationDecision d = h.Allocate(method, 2);
  ASSERT_EQ(d.selected.size(), 2u);
  EXPECT_EQ(d.selected[0], 5);
  EXPECT_EQ(d.selected[1], 4);
}

TEST(KnBestMethodTest, RandomFinalVariesWithinKn) {
  MethodHarness h(6);
  core::KnBestMethod method(core::KnBestParams{0, 4, /*greedy_final=*/false});
  std::set<model::ProviderId> firsts;
  for (int round = 0; round < 100; ++round) {
    firsts.insert(h.Allocate(method, 1).selected[0]);
  }
  EXPECT_GT(firsts.size(), 2u);  // randomized, not a fixed pick
}

// --- Cross-method property ------------------------------------------------------------

class AllMethodsSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllMethodsSweep, SelectionInvariantsHold) {
  MethodHarness h(12, static_cast<uint64_t>(GetParam()));
  std::vector<std::unique_ptr<core::AllocationMethod>> methods;
  methods.push_back(std::make_unique<RandomMethod>());
  methods.push_back(std::make_unique<RoundRobinMethod>());
  methods.push_back(std::make_unique<CapacityBasedMethod>());
  methods.push_back(std::make_unique<QlbMethod>());
  methods.push_back(std::make_unique<EconomicMethod>());
  methods.push_back(std::make_unique<InterestOnlyMethod>());
  methods.push_back(std::make_unique<core::KnBestMethod>(
      core::KnBestParams{6, 3}));
  methods.push_back(
      std::make_unique<core::SbqaMethod>(core::SbqaParams{}));

  for (auto& method : methods) {
    for (int n : {1, 3, 12, 20}) {
      const AllocationDecision d = h.Allocate(*method, n);
      EXPECT_LE(d.selected.size(), static_cast<size_t>(n)) << method->name();
      EXPECT_TRUE(Unique(d.selected)) << method->name();
      for (model::ProviderId p : d.selected) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 12);
      }
      if (!d.consulted.empty()) {
        // consulted must cover selected.
        const std::set<model::ProviderId> consulted(d.consulted.begin(),
                                                    d.consulted.end());
        for (model::ProviderId p : d.selected) {
          EXPECT_TRUE(consulted.contains(p)) << method->name();
        }
      }
      if (!d.provider_intentions.empty()) {
        EXPECT_EQ(d.provider_intentions.size(), d.consulted.size());
        for (double v : d.provider_intentions) {
          EXPECT_GE(v, -1.0);
          EXPECT_LE(v, 1.0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllMethodsSweep, ::testing::Range(1, 6));

}  // namespace
}  // namespace sbqa::baselines
