// Runtime-seam parity tests: the mediation pipeline must behave
// bit-identically whether it is driven the classic way (a hand-wired
// Simulation + Mediator) or through the runtime seam (SimRuntime adapter /
// the sbqa::Engine facade in simulated mode). Every double is compared
// exactly — the seam is a pure indirection, not an approximation.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/registry.h"
#include "engine/engine.h"
#include "experiments/methods.h"
#include "model/reputation.h"
#include "sbqa.h"
#include "sim/sim_runtime.h"
#include "sim/simulation.h"

namespace sbqa {
namespace {

constexpr int kProviders = 8;
constexpr int kQueries = 200;
constexpr double kInterArrival = 0.5;
constexpr double kDrain = 700.0;

core::ProviderParams DemoProvider(int i) {
  core::ProviderParams params;
  params.capacity = 1.0 + 0.25 * i;
  params.memory_k = 50;
  params.policy_kind = model::ProviderPolicyKind::kUtilizationTrading;
  params.psi = 0.8;
  return params;
}

core::ConsumerParams DemoConsumer() {
  core::ConsumerParams params;
  params.memory_k = 50;
  params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
  params.n_results = 2;
  return params;
}

double ConsumerPreference(int provider) { return provider % 2 == 0 ? 0.8 : -0.5; }
double ProviderPreference(int provider) { return provider < 4 ? 0.7 : -0.2; }

struct HandWiredRun {
  core::MediatorStats stats;
  double consumer_satisfaction = 0;
  std::vector<double> provider_satisfaction;
};

/// The pre-seam spelling: Simulation + Registry + Mediator wired by hand,
/// submissions scheduled as zero-delay events, paced like the engine run.
HandWiredRun RunHandWired(uint64_t seed) {
  sim::SimulationConfig sim_config;
  sim_config.seed = seed;
  sim::Simulation simulation(sim_config);

  core::Registry registry;
  const model::ConsumerId consumer = registry.AddConsumer(DemoConsumer());
  for (int i = 0; i < kProviders; ++i) {
    const model::ProviderId p = registry.AddProvider(DemoProvider(i));
    registry.consumer(consumer).preferences().Set(p, ConsumerPreference(i));
    registry.provider(p).preferences().Set(consumer, ProviderPreference(i));
  }
  model::ReputationRegistry reputation(registry.provider_count());

  experiments::MethodSpec spec;
  EXPECT_TRUE(experiments::MethodSpecFromName("sbqa", &spec));
  core::Mediator mediator(&simulation, &registry, &reputation,
                          experiments::MakeMethod(spec));

  for (int i = 0; i < kQueries; ++i) {
    simulation.scheduler().Schedule(0, [&mediator, consumer, i] {
      model::Query query;
      query.id = i + 1;
      query.consumer = consumer;
      query.n_results = 2;
      query.cost = 2.0;
      mediator.SubmitQuery(query);
    });
    simulation.RunFor(kInterArrival);
  }
  simulation.RunUntil(simulation.now() + kDrain);

  HandWiredRun run;
  run.stats = mediator.stats();
  run.consumer_satisfaction = registry.consumer(consumer).satisfaction();
  for (const core::Provider& p : registry.providers()) {
    run.provider_satisfaction.push_back(p.satisfaction());
  }
  return run;
}

struct EngineRun {
  EngineStats stats;
  EngineSnapshot snapshot;
  int64_t callbacks = 0;
  double satisfaction_sum = 0;
};

/// The same workload through the public facade (simulated mode).
EngineRun RunThroughEngine(uint64_t seed) {
  EngineOptions options;
  options.mode = EngineMode::kSimulated;
  options.seed = seed;
  options.method = "sbqa";
  Engine engine(std::move(options));

  const model::ConsumerId consumer = engine.AddConsumer(DemoConsumer());
  for (int i = 0; i < kProviders; ++i) {
    const model::ProviderId p = engine.AddProvider(DemoProvider(i));
    engine.SetConsumerPreference(consumer, p, ConsumerPreference(i));
    engine.SetProviderPreference(p, consumer, ProviderPreference(i));
  }
  engine.Start();

  EngineRun run;
  for (int i = 0; i < kQueries; ++i) {
    QueryRequest request;
    request.consumer = consumer;
    request.n_results = 2;
    request.cost = 2.0;
    engine.Submit(request, [&run](const QueryResult& result) {
      ++run.callbacks;
      run.satisfaction_sum += result.satisfaction;
    });
    engine.RunFor(kInterArrival);
  }
  EXPECT_TRUE(engine.WaitIdle(kDrain));
  run.stats = engine.Stats();
  run.snapshot = engine.Snapshot();
  return run;
}

TEST(RuntimeSeamTest, EngineFacadeMatchesHandWiredSimulationBitExactly) {
  for (uint64_t seed : {7ull, 42ull, 1234ull}) {
    SCOPED_TRACE(seed);
    const HandWiredRun hand = RunHandWired(seed);
    const EngineRun facade = RunThroughEngine(seed);

    EXPECT_EQ(facade.stats.queries_submitted, hand.stats.queries_submitted);
    EXPECT_EQ(facade.stats.queries_finalized, hand.stats.queries_finalized);
    EXPECT_EQ(facade.stats.queries_timed_out, hand.stats.queries_timed_out);
    EXPECT_EQ(facade.stats.queries_unallocated,
              hand.stats.queries_unallocated);
    EXPECT_EQ(facade.stats.instances_dispatched,
              hand.stats.instances_dispatched);
    EXPECT_EQ(facade.stats.instances_completed,
              hand.stats.instances_completed);
    // Bit-equal doubles: the facade adds no arithmetic of its own.
    EXPECT_EQ(facade.stats.mean_response_time,
              hand.stats.response_time.mean());
    EXPECT_EQ(facade.stats.mean_satisfaction,
              hand.stats.query_satisfaction.mean());
    ASSERT_EQ(facade.snapshot.consumers.size(), 1u);
    EXPECT_EQ(facade.snapshot.consumers[0].satisfaction,
              hand.consumer_satisfaction);
    ASSERT_EQ(facade.snapshot.providers.size(),
              hand.provider_satisfaction.size());
    for (size_t i = 0; i < hand.provider_satisfaction.size(); ++i) {
      EXPECT_EQ(facade.snapshot.providers[i].satisfaction,
                hand.provider_satisfaction[i]);
    }
    // Every submission delivered exactly one callback, and the per-query
    // satisfactions the callbacks saw sum to the mediator's aggregate.
    EXPECT_EQ(facade.callbacks, kQueries);
    EXPECT_EQ(facade.stats.queries_in_flight, 0);
    EXPECT_NEAR(facade.satisfaction_sum,
                facade.stats.mean_satisfaction * kQueries, 1e-6);
  }
}

TEST(RuntimeSeamTest, StandaloneSimRuntimeMatchesOwnedAdapter) {
  // A mediator on a standalone SimRuntime over simulation B must replay a
  // mediator on simulation A's owned adapter exactly.
  auto run = [](bool standalone) {
    sim::SimulationConfig config;
    config.seed = 99;
    sim::Simulation simulation(config);
    sim::SimRuntime external(&simulation);
    rt::Runtime* runtime =
        standalone ? static_cast<rt::Runtime*>(&external)
                   : static_cast<rt::Runtime*>(&simulation.runtime());

    core::Registry registry;
    const model::ConsumerId consumer = registry.AddConsumer(DemoConsumer());
    for (int i = 0; i < kProviders; ++i) {
      const model::ProviderId p = registry.AddProvider(DemoProvider(i));
      registry.consumer(consumer).preferences().Set(p, ConsumerPreference(i));
      registry.provider(p).preferences().Set(consumer, ProviderPreference(i));
    }
    model::ReputationRegistry reputation(registry.provider_count());
    experiments::MethodSpec spec = experiments::MethodSpec::Sbqa();
    core::Mediator mediator(runtime, &registry, &reputation,
                            experiments::MakeMethod(spec));
    for (int i = 0; i < 50; ++i) {
      simulation.scheduler().Schedule(0, [&mediator, consumer, i] {
        model::Query query;
        query.id = i + 1;
        query.consumer = consumer;
        query.n_results = 2;
        query.cost = 1.0;
        mediator.SubmitQuery(query);
      });
      simulation.RunFor(0.25);
    }
    simulation.RunUntil(simulation.now() + kDrain);
    return mediator.stats();
  };
  const core::MediatorStats owned = run(false);
  const core::MediatorStats external = run(true);
  EXPECT_EQ(owned.queries_finalized, external.queries_finalized);
  EXPECT_EQ(owned.response_time.mean(), external.response_time.mean());
  EXPECT_EQ(owned.query_satisfaction.mean(),
            external.query_satisfaction.mean());
}

TEST(RuntimeSeamTest, EngineRunsEveryRegistryMethod) {
  // Name-based method selection resolves and mediates for every registry
  // spelling (the CLI's --list-methods source of truth).
  for (const experiments::MethodDescription& method :
       experiments::KnownMethods()) {
    SCOPED_TRACE(method.name);
    EngineOptions options;
    options.seed = 5;
    options.method = method.name;
    Engine engine(std::move(options));
    const model::ConsumerId consumer = engine.AddConsumer(DemoConsumer());
    for (int i = 0; i < 4; ++i) {
      const model::ProviderId p = engine.AddProvider(DemoProvider(i));
      engine.SetConsumerPreference(consumer, p, 0.5);
      engine.SetProviderPreference(p, consumer, 0.5);
    }
    engine.Start();
    int64_t callbacks = 0;
    for (int i = 0; i < 10; ++i) {
      engine.Submit({consumer, 0, 1, 1.0},
                    [&callbacks](const QueryResult&) { ++callbacks; });
      engine.RunFor(0.5);
    }
    EXPECT_TRUE(engine.WaitIdle(kDrain));
    EXPECT_EQ(callbacks, 10);
    EXPECT_EQ(engine.Stats().queries_finalized, 10);
  }
}

}  // namespace
}  // namespace sbqa
