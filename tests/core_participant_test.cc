// Tests for the Provider/Consumer runtime entities and the Registry.

#include <gtest/gtest.h>

#include "core/consumer.h"
#include "core/provider.h"
#include "core/registry.h"

namespace sbqa::core {
namespace {

ProviderParams FastProvider() {
  ProviderParams params;
  params.capacity = 2.0;
  params.memory_k = 10;
  params.tau_utilization = 10.0;
  return params;
}

// --- Provider queueing ---------------------------------------------------------

TEST(ProviderTest, IdleProviderHasNoBacklog) {
  Provider p(0, FastProvider());
  EXPECT_DOUBLE_EQ(p.Backlog(0.0), 0.0);
  EXPECT_EQ(p.outstanding(), 0);
  EXPECT_DOUBLE_EQ(p.UtilizationNorm(0.0), 0.0);
}

TEST(ProviderTest, EnqueueComputesFinishFromCapacity) {
  Provider p(0, FastProvider());  // capacity 2 => cost 4 takes 2s
  const double finish = p.Enqueue(10.0, 4.0);
  EXPECT_DOUBLE_EQ(finish, 12.0);
  EXPECT_EQ(p.outstanding(), 1);
  EXPECT_DOUBLE_EQ(p.Backlog(10.0), 2.0);
}

TEST(ProviderTest, FifoQueueingAccumulates) {
  Provider p(0, FastProvider());
  EXPECT_DOUBLE_EQ(p.Enqueue(0.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(p.Enqueue(0.0, 4.0), 4.0);  // waits for the first
  EXPECT_DOUBLE_EQ(p.Backlog(0.0), 4.0);
  EXPECT_DOUBLE_EQ(p.Backlog(3.0), 1.0);  // drains over time
}

TEST(ProviderTest, EnqueueAfterIdleGapStartsFresh) {
  Provider p(0, FastProvider());
  p.Enqueue(0.0, 2.0);  // finishes at 1.0
  const double finish = p.Enqueue(5.0, 2.0);
  EXPECT_DOUBLE_EQ(finish, 6.0);
}

TEST(ProviderTest, ExpectedCompletionAddsOwnProcessing) {
  Provider p(0, FastProvider());
  p.Enqueue(0.0, 4.0);  // backlog 2s
  EXPECT_DOUBLE_EQ(p.ExpectedCompletion(0.0, 6.0), 2.0 + 3.0);
}

TEST(ProviderTest, OnInstanceFinishedTracksWork) {
  Provider p(0, FastProvider());
  p.Enqueue(0.0, 4.0);
  p.OnInstanceFinished(4.0);
  EXPECT_EQ(p.outstanding(), 0);
  EXPECT_DOUBLE_EQ(p.busy_seconds(), 2.0);
  EXPECT_EQ(p.instances_performed(), 1);
}

TEST(ProviderTest, DropQueueClearsBacklogAndBumpsEpoch) {
  Provider p(0, FastProvider());
  p.Enqueue(0.0, 10.0);
  const uint64_t epoch_before = p.queue_epoch();
  p.DropQueue(1.0);
  EXPECT_DOUBLE_EQ(p.Backlog(1.0), 0.0);
  EXPECT_EQ(p.outstanding(), 0);
  EXPECT_GT(p.queue_epoch(), epoch_before);
}

TEST(ProviderTest, UtilizationNormSaturates) {
  Provider p(0, FastProvider());  // tau = 10
  p.Enqueue(0.0, 20.0);           // backlog 10s -> norm 0.5
  EXPECT_DOUBLE_EQ(p.UtilizationNorm(0.0), 0.5);
  p.Enqueue(0.0, 1000.0);
  EXPECT_LT(p.UtilizationNorm(0.0), 1.0);
  EXPECT_GT(p.UtilizationNorm(0.0), 0.9);
}

TEST(ProviderTest, CanTreatDefaultsToAllClasses) {
  Provider p(0, FastProvider());
  EXPECT_TRUE(p.CanTreat(0));
  EXPECT_TRUE(p.CanTreat(99));
  p.RestrictClasses({1, 2});
  EXPECT_TRUE(p.CanTreat(1));
  EXPECT_FALSE(p.CanTreat(3));
}

TEST(ProviderTest, IntentionUsesPreferenceForConsumer) {
  ProviderParams params = FastProvider();
  params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
  Provider p(0, params);
  p.preferences().Set(7, 0.9);
  model::Query q;
  q.consumer = 7;
  EXPECT_DOUBLE_EQ(p.ComputeIntention(q, 0.0), 0.9);
  q.consumer = 8;  // unknown consumer -> default preference 0
  EXPECT_DOUBLE_EQ(p.ComputeIntention(q, 0.0), 0.0);
}

TEST(ProviderTest, UtilizationTradingIntentionDropsUnderLoad) {
  ProviderParams params = FastProvider();
  params.policy_kind = model::ProviderPolicyKind::kUtilizationTrading;
  params.psi = 0.5;
  Provider p(0, params);
  p.preferences().Set(1, 0.8);
  model::Query q;
  q.consumer = 1;
  const double idle_intention = p.ComputeIntention(q, 0.0);
  p.Enqueue(0.0, 100.0);
  const double busy_intention = p.ComputeIntention(q, 0.0);
  EXPECT_GT(idle_intention, busy_intention);
}

TEST(ProviderDeathTest, InvalidParamsAbort) {
  ProviderParams bad = FastProvider();
  bad.capacity = 0;
  EXPECT_DEATH(Provider(0, bad), "CHECK failed");
  ProviderParams bad2 = FastProvider();
  bad2.error_rate = 1.5;
  EXPECT_DEATH(Provider(0, bad2), "CHECK failed");
}

// --- Consumer -------------------------------------------------------------------

TEST(ConsumerTest, IntentionUsesPreferencePolicy) {
  ConsumerParams params;
  params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
  Consumer c(0, params);
  c.preferences().Set(3, -0.7);
  model::Query q;
  q.consumer = 0;
  EXPECT_DOUBLE_EQ(c.ComputeIntention(q, 3, 0.5, 1.0, 2.0), -0.7);
}

TEST(ConsumerTest, ReputationTradingReactsToReputation) {
  ConsumerParams params;
  params.policy_kind = model::ConsumerPolicyKind::kReputationTrading;
  params.phi = 0.5;
  Consumer c(0, params);
  c.preferences().Set(3, 0.5);
  model::Query q;
  const double good = c.ComputeIntention(q, 3, 0.95, 1.0, 2.0);
  const double bad = c.ComputeIntention(q, 3, 0.05, 1.0, 2.0);
  EXPECT_GT(good, bad);
}

TEST(ConsumerTest, ActivityFlag) {
  Consumer c(0, ConsumerParams{});
  EXPECT_TRUE(c.active());
  c.set_active(false);
  EXPECT_FALSE(c.active());
}

TEST(ConsumerTest, IssueCompleteCounters) {
  Consumer c(0, ConsumerParams{});
  c.OnQueryIssued();
  c.OnQueryIssued();
  c.OnQueryCompleted();
  EXPECT_EQ(c.queries_issued(), 2);
  EXPECT_EQ(c.queries_completed(), 1);
}

TEST(ConsumerDeathTest, InvalidNResultsAborts) {
  ConsumerParams params;
  params.n_results = 0;
  EXPECT_DEATH(Consumer(0, params), "CHECK failed");
}

// --- Registry -------------------------------------------------------------------

TEST(RegistryTest, AssignsDenseIds) {
  Registry r;
  EXPECT_EQ(r.AddProvider(FastProvider()), 0);
  EXPECT_EQ(r.AddProvider(FastProvider()), 1);
  EXPECT_EQ(r.AddConsumer(ConsumerParams{}), 0);
  EXPECT_EQ(r.provider_count(), 2u);
  EXPECT_EQ(r.consumer_count(), 1u);
}

TEST(RegistryTest, ProvidersForFiltersDeadProviders) {
  Registry r;
  r.AddProvider(FastProvider());
  r.AddProvider(FastProvider());
  r.AddProvider(FastProvider());
  r.provider(1).set_alive(false);
  model::Query q;
  const auto pq = r.ProvidersFor(q);
  EXPECT_EQ(pq, (std::vector<model::ProviderId>{0, 2}));
}

TEST(RegistryTest, ProvidersForFiltersByClass) {
  Registry r;
  r.AddProvider(FastProvider());
  r.AddProvider(FastProvider());
  r.provider(0).RestrictClasses({5});
  model::Query q;
  q.query_class = 7;
  EXPECT_EQ(r.ProvidersFor(q), (std::vector<model::ProviderId>{1}));
  q.query_class = 5;
  EXPECT_EQ(r.ProvidersFor(q).size(), 2u);
}

TEST(RegistryTest, CapacityAccounting) {
  Registry r;
  ProviderParams a = FastProvider();
  a.capacity = 1.0;
  ProviderParams b = FastProvider();
  b.capacity = 3.0;
  r.AddProvider(a);
  r.AddProvider(b);
  EXPECT_DOUBLE_EQ(r.TotalCapacity(), 4.0);
  EXPECT_DOUBLE_EQ(r.AliveCapacity(), 4.0);
  r.provider(1).set_alive(false);
  EXPECT_DOUBLE_EQ(r.AliveCapacity(), 1.0);
  EXPECT_EQ(r.alive_provider_count(), 1u);
}

TEST(RegistryTest, ActiveConsumerCount) {
  Registry r;
  r.AddConsumer(ConsumerParams{});
  r.AddConsumer(ConsumerParams{});
  EXPECT_EQ(r.active_consumer_count(), 2u);
  r.consumer(0).set_active(false);
  EXPECT_EQ(r.active_consumer_count(), 1u);
}

TEST(RegistryDeathTest, OutOfRangeLookupAborts) {
  Registry r;
  r.AddProvider(FastProvider());
  EXPECT_DEATH(r.provider(5), "CHECK failed");
  EXPECT_DEATH(r.consumer(0), "CHECK failed");
}

}  // namespace
}  // namespace sbqa::core
