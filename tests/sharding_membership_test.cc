// Elastic sharded membership — the acceptance gate of the epoch-based
// join/churn/rebalance protocol:
//
//   1. full dynamic-population scenarios (availability churn + runtime
//      volunteer joins + an autonomous environment) are bit-reproducible
//      per (seed, shard_count) at 1, 2 and 4 shards, threaded or serial,
//      with BOTH shared observers (collector mux) and per-shard observers
//      recording identical traces run to run;
//   2. shard_count = 1 through the epoch-capable sharded machinery matches
//      the classic single-engine summaries bit for bit with joins and
//      churn enabled;
//   3. a provider departing (or churning offline) with queries in flight
//      never leaks an in-flight pool slot, and the availability-churn
//      steady state stays allocation-free (counting allocator + slot
//      audit over a hand-built sharded stack driving the membership log
//      directly).

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/registry.h"
#include "core/sbqa.h"
#include "core/shard_directory.h"
#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "model/reputation.h"
#include "sim/shard_set.h"
#include "util/counting_alloc.h"

namespace sbqa::experiments {
namespace {

/// FNV-folding trace recorder (same scheme as sharding_determinism_test).
class TraceRecorder : public core::MediationObserver {
 public:
  void OnMediation(const model::Query& query,
                   const core::AllocationDecision& decision,
                   double now) override {
    Mix(0x11);
    Mix(static_cast<uint64_t>(query.id));
    Mix(std::bit_cast<uint64_t>(now));
    for (model::ProviderId p : decision.selected) {
      Mix(static_cast<uint64_t>(static_cast<uint32_t>(p)));
    }
    ++mediations_;
  }

  void OnQueryCompleted(const core::QueryOutcome& outcome) override {
    Mix(0x22);
    Mix(static_cast<uint64_t>(outcome.query.id));
    Mix(static_cast<uint64_t>(outcome.results_received));
    Mix(std::bit_cast<uint64_t>(outcome.satisfaction));
    Mix(std::bit_cast<uint64_t>(outcome.response_time));
    ++outcomes_;
  }

  void OnProviderDeparted(model::ProviderId provider, double now) override {
    Mix(0x33);
    Mix(static_cast<uint64_t>(static_cast<uint32_t>(provider)));
    Mix(std::bit_cast<uint64_t>(now));
  }

  void OnProviderAvailabilityChanged(model::ProviderId provider,
                                     bool available, double now) override {
    Mix(0x44);
    Mix(static_cast<uint64_t>(static_cast<uint32_t>(provider)));
    Mix(available ? 1 : 0);
    Mix(std::bit_cast<uint64_t>(now));
    ++availability_events_;
  }

  uint64_t hash() const { return hash_; }
  int64_t mediations() const { return mediations_; }
  int64_t outcomes() const { return outcomes_; }
  int64_t availability_events() const { return availability_events_; }

 private:
  void Mix(uint64_t v) { hash_ = (hash_ ^ v) * 1099511628211ull; }

  uint64_t hash_ = 14695981039346656037ull;
  int64_t mediations_ = 0;
  int64_t outcomes_ = 0;
  int64_t availability_events_ = 0;
};

/// One run's recorders: a per-shard set plus one shared observer fed by
/// the collector's cross-shard mux.
struct Traces {
  std::vector<std::unique_ptr<TraceRecorder>> per_shard;
  TraceRecorder shared;

  ScenarioConfig Attach(ScenarioConfig config) {
    per_shard.clear();
    for (uint32_t s = 0; s < config.sim.shard_count; ++s) {
      per_shard.push_back(std::make_unique<TraceRecorder>());
    }
    config.shard_observer_factory = [this](uint32_t s) {
      return per_shard[s].get();
    };
    config.observers.push_back(&shared);
    return config;
  }

  std::vector<uint64_t> hashes() const {
    std::vector<uint64_t> out;
    for (const auto& r : per_shard) out.push_back(r->hash());
    out.push_back(shared.hash());
    return out;
  }
};

/// The full dynamic-population workload: churn + joins + autonomous
/// departures over the demo population.
ScenarioConfig DynamicConfig(uint64_t seed, uint32_t shards, bool threads) {
  ScenarioConfig config = BaseDemoConfig(seed, /*volunteers=*/120,
                                         /*duration=*/90.0);
  config.sim.shard_count = shards;
  config.sim.shard_use_threads = threads;
  config.departure.providers_can_leave = true;
  config.departure.provider_threshold = 0.2;
  config.departure.grace_period = 40.0;
  config.churn.enabled = true;
  config.churn.mean_online = 50.0;
  config.churn.mean_offline = 15.0;
  config.churn.initial_online_fraction = 0.85;
  config.joins.enabled = true;
  config.joins.rate = 0.4;
  config.joins.max_joins = 30;
  config.joins.start_time = 5.0;
  return config;
}

TEST(ShardingMembershipTest, DynamicScenariosAreBitReproduciblePerShardCount) {
  for (uint32_t shards : {1u, 2u, 4u}) {
    Traces first;
    const RunResult a =
        RunShardedScenario(first.Attach(DynamicConfig(17, shards, true)));
    Traces second;
    const RunResult b =
        RunShardedScenario(second.Attach(DynamicConfig(17, shards, true)));

    EXPECT_EQ(first.hashes(), second.hashes()) << shards << " shards";
    EXPECT_EQ(a.summary.queries_finalized, b.summary.queries_finalized);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.summary.consumer_satisfaction),
              std::bit_cast<uint64_t>(b.summary.consumer_satisfaction));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.summary.provider_satisfaction),
              std::bit_cast<uint64_t>(b.summary.provider_satisfaction));
    EXPECT_EQ(a.membership_epochs, b.membership_epochs);
    EXPECT_EQ(a.membership_ops, b.membership_ops);

    // The dynamics actually exercised the protocol.
    EXPECT_GT(a.summary.queries_finalized, 100) << shards << " shards";
    EXPECT_GT(a.summary.provider_joins, 0) << shards << " shards";
    EXPECT_GT(a.summary.provider_offline_events, 0) << shards << " shards";
    EXPECT_EQ(a.summary.queries_submitted, a.summary.queries_finalized);
    if (shards > 1) {
      EXPECT_GT(a.membership_epochs, 0u);
      EXPECT_GT(a.membership_ops, 0u);
    } else {
      // One shard applies membership immediately (classic semantics).
      EXPECT_EQ(a.membership_ops, 0u);
    }
    // The shared observer saw the whole run, merged across shards.
    int64_t per_shard_outcomes = 0;
    for (const auto& r : first.per_shard) {
      per_shard_outcomes += r->outcomes();
    }
    EXPECT_EQ(first.shared.outcomes(), per_shard_outcomes);
    EXPECT_EQ(first.shared.outcomes(), a.summary.queries_finalized);
    EXPECT_GT(first.shared.availability_events(), 0);
  }
}

TEST(ShardingMembershipTest, ThreadedAndSerialDynamicTracesMatch) {
  Traces threaded;
  const RunResult a =
      RunShardedScenario(threaded.Attach(DynamicConfig(23, 3, true)));
  Traces serial;
  const RunResult b =
      RunShardedScenario(serial.Attach(DynamicConfig(23, 3, false)));

  EXPECT_EQ(threaded.hashes(), serial.hashes());
  EXPECT_EQ(a.summary.queries_finalized, b.summary.queries_finalized);
  EXPECT_EQ(a.summary.provider_joins, b.summary.provider_joins);
  EXPECT_EQ(a.summary.provider_offline_events,
            b.summary.provider_offline_events);
  EXPECT_EQ(std::bit_cast<uint64_t>(a.summary.provider_satisfaction),
            std::bit_cast<uint64_t>(b.summary.provider_satisfaction));
}

TEST(ShardingMembershipTest, EpochPathAtOneShardMatchesClassicEngine) {
  // Classic single-engine run with joins + churn...
  ScenarioConfig classic_config = DynamicConfig(42, 1, false);
  TraceRecorder classic_trace;
  classic_config.observers.push_back(&classic_trace);
  const RunResult classic = RunScenario(classic_config);

  // ...vs the same scenario through the epoch-capable sharded machinery.
  Traces traces;
  const RunResult sharded =
      RunShardedScenario(traces.Attach(DynamicConfig(42, 1, false)));

  EXPECT_EQ(classic_trace.hash(), traces.shared.hash());
  EXPECT_EQ(classic_trace.hash(), traces.per_shard[0]->hash());
  EXPECT_EQ(classic_trace.mediations(), traces.shared.mediations());

  const metrics::RunSummary& a = classic.summary;
  const metrics::RunSummary& b = sharded.summary;
  EXPECT_EQ(a.queries_submitted, b.queries_submitted);
  EXPECT_EQ(a.queries_finalized, b.queries_finalized);
  EXPECT_EQ(a.queries_fully_served, b.queries_fully_served);
  EXPECT_EQ(a.queries_timed_out, b.queries_timed_out);
  EXPECT_EQ(a.provider_joins, b.provider_joins);
  EXPECT_EQ(a.provider_offline_events, b.provider_offline_events);
  EXPECT_EQ(a.provider_departures, b.provider_departures);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  // Bit-identical accumulation, not just statistical agreement.
  EXPECT_EQ(std::bit_cast<uint64_t>(a.consumer_satisfaction),
            std::bit_cast<uint64_t>(b.consumer_satisfaction));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.provider_satisfaction),
            std::bit_cast<uint64_t>(b.provider_satisfaction));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.mean_response_time),
            std::bit_cast<uint64_t>(b.mean_response_time));
  EXPECT_GT(b.provider_joins, 0);
  EXPECT_GT(b.provider_offline_events, 0);
}

// --- In-flight slot audit under epoch-applied departures/churn --------------

/// Hand-built 2-shard stack (the sharded pump harness): direct access to
/// the mediators so the test can audit pool slots and drive the
/// membership log itself.
struct MembershipHarness {
  static constexpr uint32_t kShards = 2;
  static constexpr size_t kProviders = 60;

  sim::SimulationConfig sim_config;
  std::unique_ptr<sim::ShardSet> shards;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::vector<std::unique_ptr<core::Mediator>> mediators;
  std::vector<core::Mediator*> mediator_ptrs;
  core::ShardDirectory directory;

  /// Applier mirroring the experiment runner's RunnerMembership (the
  /// canonical version, which also wires reputation + churn for joins):
  /// route to the owning mediator. This harness never queues joins, so a
  /// join reaching it is a test bug — fail loudly instead of leaving the
  /// reputation registry unsized for the new id.
  struct Applier final : core::MembershipApplier {
    MembershipHarness* harness = nullptr;
    void ApplyAvailability(model::ProviderId p, bool available) override {
      harness->mediator_ptrs[harness->registry.ProviderShard(p)]
          ->ApplyProviderAvailability(p, available);
    }
    void ApplyDeparture(model::ProviderId p) override {
      harness->mediator_ptrs[harness->registry.ProviderShard(p)]
          ->ApplyProviderDeparture(p);
    }
    void OnProviderJoined(model::ProviderId provider) override {
      FAIL() << "harness does not expect joins (provider " << provider << ")";
    }
  };
  Applier applier;

  MembershipHarness() {
    sim_config.seed = 77;
    sim_config.shard_count = kShards;
    sim_config.shard_use_threads = false;  // exact alloc accounting
    shards = std::make_unique<sim::ShardSet>(sim_config);

    util::Rng setup(5);
    core::ConsumerParams consumer_params;
    consumer_params.n_results = 3;
    for (uint32_t s = 0; s < kShards; ++s) {
      registry.AddConsumer(consumer_params);
    }
    for (size_t i = 0; i < kProviders; ++i) {
      core::ProviderParams params;
      params.capacity = setup.Uniform(0.5, 2.0);
      const model::ProviderId id = registry.AddProvider(params);
      for (uint32_t c = 0; c < kShards; ++c) {
        registry.provider(id).preferences().Set(static_cast<int32_t>(c),
                                                setup.Uniform(-1, 1));
        registry.consumer(static_cast<model::ConsumerId>(c))
            .preferences()
            .Set(id, setup.Uniform(-1, 1));
      }
    }
    registry.SetShardCount(kShards);

    reputation =
        std::make_unique<model::ReputationRegistry>(registry.provider_count());
    core::SbqaParams sbqa_params;
    sbqa_params.knbest = core::KnBestParams{20, 8};
    for (uint32_t s = 0; s < kShards; ++s) {
      mediators.push_back(std::make_unique<core::Mediator>(
          &shards->shard(s), &registry, reputation.get(),
          std::make_unique<core::SbqaMethod>(sbqa_params),
          core::MediatorConfig{}));
      mediator_ptrs.push_back(mediators.back().get());
    }
    directory.Refresh(registry);
    for (uint32_t s = 0; s < kShards; ++s) {
      mediators[s]->ConfigureSharding(shards.get(), s, &directory,
                                      mediator_ptrs);
    }
    applier.harness = this;
    shards->SetMembershipHook(
        [this](double) { registry.AdvanceEpoch(&applier); });
    shards->AddBarrierHook(
        [this](double) { directory.RefreshIfChanged(registry); });
  }

  size_t TotalInflight() const {
    size_t total = 0;
    for (const auto& m : mediators) total += m->inflight_count();
    return total;
  }
};

TEST(ShardingMembershipTest, DepartingProviderNeverLeaksInflightSlots) {
  MembershipHarness harness;
  model::QueryId next_id = 0;
  double horizon = 0;
  int round = 0;

  // Pump queries while yanking providers offline mid-flight through the
  // membership log. The churn is a deterministic PERIODIC rotation (a
  // sliding offline window over the first ten ids of each shard's block),
  // so the warm-up phase explores the same worst-case concurrency the
  // steady phase revisits — a prerequisite for an allocation-free steady
  // state. Victims stay a strict subset of each shard's partition so the
  // candidate pool never runs dry: the borrow fallback (which
  // intentionally allocates) must stay off this path.
  const auto pump = [&](int rounds) {
    for (int i = 0; i < rounds; ++i, ++round) {
      for (uint32_t s = 0; s < MembershipHarness::kShards; ++s) {
        model::Query query;
        query.id = ++next_id;
        query.consumer = static_cast<model::ConsumerId>(s);
        // ~0.3s of work per instance: slow enough that churn keeps
        // hitting providers with instances in flight, light enough that
        // the system is not overloaded (an ever-growing backlog would
        // grow the in-flight pool's high-water mark forever and the
        // steady state would never become allocation-free).
        query.n_results = 3;
        query.cost = 0.4;
        harness.mediator_ptrs[s]->SubmitQuery(query);
      }
      if (round % 3 == 0) {
        const int k = round / 3;
        // j is a PER-SHARD rotation counter, decoupled from the shard
        // choice: if the local index were derived from k directly, its
        // parity would be locked to the shard's and the victim/revival
        // sets would be disjoint — every provider taken offline would
        // stay offline and the "churn" would degenerate to no-op flips.
        const int j = k / 2;
        const model::ProviderId base = k % 2 == 0 ? 0 : 30;
        const auto victim = static_cast<model::ProviderId>(base + j % 10);
        const auto revived =
            static_cast<model::ProviderId>(base + (j + 5) % 10);
        harness.mediator_ptrs[harness.registry.ProviderShard(victim)]
            ->SetProviderAvailability(victim, false);
        harness.mediator_ptrs[harness.registry.ProviderShard(revived)]
            ->SetProviderAvailability(revived, true);
      }
      // A few permanent departures, pinned to warm-up rounds and to ids
      // OUTSIDE the churn window — each lands while the victim has
      // instances in flight (every provider always does at this load).
      if (round == 50 || round == 100 || round == 150 || round == 200) {
        const auto doomed =
            static_cast<model::ProviderId>(round < 125 ? 10 + round / 50
                                                       : 38 + round / 50);
        harness.registry.QueueDeparture(
            harness.registry.ProviderShard(doomed), doomed);
      }
      horizon += 0.05;
      harness.shards->RunUntil(horizon);
    }
    horizon += 700.0;  // full drain: results, timeouts, outcome routing
    harness.shards->RunUntil(horizon);
  };

  // Burst pre-warm: 200 simultaneous queries per shard push the in-flight
  // pool and timeout ring far past any concurrency the churny steady
  // phase can reach (~50), so pool growth after this point can only mean
  // a leaked slot — occasional latency/backlog spikes cannot mimic one.
  for (int burst = 0; burst < 200; ++burst) {
    for (uint32_t s = 0; s < MembershipHarness::kShards; ++s) {
      model::Query query;
      query.id = ++next_id;
      query.consumer = static_cast<model::ConsumerId>(s);
      query.n_results = 3;
      query.cost = 0.4;
      harness.mediator_ptrs[s]->SubmitQuery(query);
    }
  }
  horizon += 700.0;
  harness.shards->RunUntil(horizon);

  // Warm-up: run the periodic churn long enough that every queue and
  // scratch buffer reaches its per-window high-water mark.
  pump(300);
  EXPECT_EQ(harness.TotalInflight(), 0u);
  EXPECT_GT(harness.registry.membership_epoch(), 0u);
  size_t warm_slots = 0;
  for (const auto& m : harness.mediators) {
    warm_slots += m->inflight_slot_capacity();
  }

  // Steady state: churn keeps hitting in-flight providers, yet the
  // mediation path stays allocation-free and every slot is returned.
  const uint64_t steady_allocs = util::AllocationCount();
  pump(150);
  const double per_query =
      static_cast<double>(util::AllocationCount() - steady_allocs) /
      (150.0 * MembershipHarness::kShards);
  EXPECT_EQ(per_query, 0.0)
      << "availability churn must stay allocation-free in steady state";

  // Slot audit: nothing left in flight, and the pool never grew past its
  // warm-up high-water mark — a leaked slot would force fresh ones.
  EXPECT_EQ(harness.TotalInflight(), 0u);
  size_t steady_slots = 0;
  for (const auto& m : harness.mediators) {
    steady_slots += m->inflight_slot_capacity();
  }
  EXPECT_EQ(steady_slots, warm_slots);
  // Every dispatched instance was resolved one way or the other (an
  // instance can legitimately count on both sides — completed at the
  // provider, then failed by a churn event racing its result home).
  int64_t dispatched = 0, completed = 0, failed = 0;
  int64_t offline_events = 0, departures = 0;
  for (const auto& m : harness.mediators) {
    dispatched += m->stats().instances_dispatched;
    completed += m->stats().instances_completed;
    failed += m->stats().instances_failed;
    offline_events += m->stats().provider_offline_events;
    departures += m->stats().provider_departures;
  }
  EXPECT_LE(dispatched, completed + failed);
  EXPECT_GT(offline_events, 0);
  EXPECT_GT(departures, 0);
}

}  // namespace
}  // namespace sbqa::experiments
