// Tests for open-system dynamics: availability churn and runtime joins.

#include <memory>

#include <gtest/gtest.h>

#include "boinc/join.h"
#include "core/mediator.h"
#include "core/sbqa.h"
#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "model/reputation.h"
#include "sim/simulation.h"
#include "workload/churn.h"

namespace sbqa {
namespace {

// --- Mediator availability API ------------------------------------------------

struct AvailabilityHarness {
  AvailabilityHarness() {
    sim::SimulationConfig config;
    config.seed = 21;
    simulation = std::make_unique<sim::Simulation>(config);
    core::ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
    registry.AddConsumer(consumer_params);
    for (int i = 0; i < 3; ++i) {
      core::ProviderParams params;
      params.capacity = 1.0;
      params.policy_kind = model::ProviderPolicyKind::kPreferenceOnly;
      registry.AddProvider(params);
    }
    reputation = std::make_unique<model::ReputationRegistry>(3);
    core::MediatorConfig mediator_config;
    mediator_config.simulate_network = false;
    mediator = std::make_unique<core::Mediator>(
        simulation.get(), &registry, reputation.get(),
        std::make_unique<core::SbqaMethod>(core::SbqaParams{}),
        mediator_config);
  }

  std::unique_ptr<sim::Simulation> simulation;
  core::Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<core::Mediator> mediator;
};

TEST(AvailabilityTest, OfflineProviderLeavesCandidateSet) {
  AvailabilityHarness h;
  h.mediator->SetProviderAvailability(1, false);
  model::Query q;
  const auto pq = h.registry.ProvidersFor(q);
  EXPECT_EQ(pq, (std::vector<model::ProviderId>{0, 2}));
  EXPECT_EQ(h.mediator->stats().provider_offline_events, 1);
}

TEST(AvailabilityTest, ReturningProviderIsEligibleAgain) {
  AvailabilityHarness h;
  h.mediator->SetProviderAvailability(1, false);
  h.mediator->SetProviderAvailability(1, true);
  model::Query q;
  EXPECT_EQ(h.registry.ProvidersFor(q).size(), 3u);
  EXPECT_TRUE(h.registry.provider(1).alive());
  EXPECT_FALSE(h.registry.provider(1).departed());
}

TEST(AvailabilityTest, RedundantTransitionsAreNoOps) {
  AvailabilityHarness h;
  h.mediator->SetProviderAvailability(1, true);   // already online
  EXPECT_EQ(h.mediator->stats().provider_offline_events, 0);
  h.mediator->SetProviderAvailability(1, false);
  h.mediator->SetProviderAvailability(1, false);  // already offline
  EXPECT_EQ(h.mediator->stats().provider_offline_events, 1);
}

TEST(AvailabilityTest, DepartedProviderCannotReturn) {
  AvailabilityHarness h;
  h.registry.provider(1).MarkDeparted();
  h.mediator->SetProviderAvailability(1, true);
  EXPECT_FALSE(h.registry.provider(1).alive());
  EXPECT_TRUE(h.registry.provider(1).departed());
}

TEST(AvailabilityTest, GoingOfflineFailsInFlightInstances) {
  AvailabilityHarness h;
  // Query on the (single) provider 0: take the others offline first.
  h.mediator->SetProviderAvailability(1, false);
  h.mediator->SetProviderAvailability(2, false);
  model::Query q;
  q.id = 1;
  q.consumer = 0;
  q.n_results = 1;
  q.cost = 10.0;  // long-running
  h.mediator->SubmitQuery(q);
  h.simulation->RunUntil(1.0);
  ASSERT_EQ(h.mediator->inflight_count(), 1u);
  h.mediator->SetProviderAvailability(0, false);
  h.simulation->RunUntil(2.0);
  // The instance failed, so the query finalized with zero results.
  EXPECT_EQ(h.mediator->inflight_count(), 0u);
  EXPECT_EQ(h.mediator->stats().instances_failed, 1);
  EXPECT_EQ(h.mediator->stats().queries_finalized, 1);
}

TEST(AvailabilityTest, ProcessingEventOfDroppedWorkIsStale) {
  AvailabilityHarness h;
  h.mediator->SetProviderAvailability(1, false);
  h.mediator->SetProviderAvailability(2, false);
  model::Query q;
  q.id = 1;
  q.consumer = 0;
  q.n_results = 1;
  q.cost = 5.0;
  h.mediator->SubmitQuery(q);
  h.simulation->RunUntil(1.0);
  h.mediator->SetProviderAvailability(0, false);
  h.mediator->SetProviderAvailability(0, true);
  // Run past the would-be completion: the stale event must not fire
  // provider accounting (queue epoch changed).
  h.simulation->RunUntil(10.0);
  EXPECT_EQ(h.registry.provider(0).instances_performed(), 0);
  EXPECT_EQ(h.registry.provider(0).outstanding(), 0);
}

// --- ChurnProcess ----------------------------------------------------------------

TEST(ChurnTest, DisabledChurnStartsNothing) {
  AvailabilityHarness h;
  workload::ChurnParams params;
  params.enabled = false;
  const auto processes = workload::StartChurn(
      h.simulation.get(), h.mediator.get(), {0, 1, 2}, params);
  EXPECT_TRUE(processes.empty());
}

TEST(ChurnTest, TogglesAvailabilityOverTime) {
  AvailabilityHarness h;
  workload::ChurnParams params;
  params.enabled = true;
  params.mean_online = 5.0;
  params.mean_offline = 5.0;
  const auto processes = workload::StartChurn(
      h.simulation.get(), h.mediator.get(), {0, 1, 2}, params);
  ASSERT_EQ(processes.size(), 3u);
  h.simulation->RunUntil(200.0);
  // With 5s mean spells over 200s, every provider churned several times.
  for (const auto& process : processes) {
    EXPECT_GT(process->offline_spells(), 3);
  }
  EXPECT_GT(h.mediator->stats().provider_offline_events, 9);
}

TEST(ChurnTest, InitialOfflineFractionRespected) {
  sim::SimulationConfig sim_config;
  sim_config.seed = 5;
  sim::Simulation simulation(sim_config);
  core::Registry registry;
  core::ConsumerParams cp;
  registry.AddConsumer(cp);
  std::vector<model::ProviderId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(registry.AddProvider(core::ProviderParams{}));
  }
  model::ReputationRegistry reputation(200);
  core::MediatorConfig mc;
  mc.simulate_network = false;
  core::Mediator mediator(&simulation, &registry, &reputation,
                          std::make_unique<core::SbqaMethod>(
                              core::SbqaParams{}),
                          mc);
  workload::ChurnParams params;
  params.enabled = true;
  params.initial_online_fraction = 0.5;
  const auto processes =
      workload::StartChurn(&simulation, &mediator, ids, params);
  const size_t online = registry.alive_provider_count();
  EXPECT_NEAR(static_cast<double>(online), 100.0, 25.0);
}

// --- VolunteerJoinProcess -----------------------------------------------------------

TEST(JoinTest, VolunteersJoinAtConfiguredRate) {
  sim::SimulationConfig sim_config;
  sim_config.seed = 31;
  sim::Simulation simulation(sim_config);
  core::Registry registry;
  util::Rng rng(31);
  const boinc::BoincSpec spec = boinc::DemoBoincSpec(20);
  const boinc::BuiltPopulation built =
      boinc::BuildPopulation(spec, &registry, &rng);
  model::ReputationRegistry reputation(registry.provider_count());
  core::MediatorConfig mc;
  mc.simulate_network = false;
  core::Mediator mediator(&simulation, &registry, &reputation,
                          std::make_unique<core::SbqaMethod>(
                              core::SbqaParams{}),
                          mc);

  boinc::VolunteerJoinParams params;
  params.enabled = true;
  params.rate = 0.5;  // one every 2s
  params.max_joins = 1000;
  boinc::VolunteerJoinProcess joins(&simulation, &mediator, &reputation,
                                    spec, built.projects, params);
  joins.Start();
  simulation.RunUntil(100.0);

  EXPECT_NEAR(static_cast<double>(joins.joined()), 50.0, 25.0);
  EXPECT_EQ(registry.provider_count(), 20u + static_cast<size_t>(joins.joined()));
  EXPECT_EQ(reputation.size(), registry.provider_count());
  // Newcomers have popularity-driven preferences for every project.
  for (model::ProviderId id : joins.joined_ids()) {
    for (model::ConsumerId project : built.projects) {
      EXPECT_TRUE(registry.provider(id).preferences().Has(project));
    }
  }
}

TEST(JoinTest, MaxJoinsCapRespected) {
  sim::SimulationConfig sim_config;
  sim_config.seed = 32;
  sim::Simulation simulation(sim_config);
  core::Registry registry;
  util::Rng rng(32);
  const boinc::BoincSpec spec = boinc::DemoBoincSpec(5);
  const boinc::BuiltPopulation built =
      boinc::BuildPopulation(spec, &registry, &rng);
  model::ReputationRegistry reputation(registry.provider_count());
  core::MediatorConfig mc;
  mc.simulate_network = false;
  core::Mediator mediator(&simulation, &registry, &reputation,
                          std::make_unique<core::SbqaMethod>(
                              core::SbqaParams{}),
                          mc);
  boinc::VolunteerJoinParams params;
  params.enabled = true;
  params.rate = 10.0;
  params.max_joins = 7;
  boinc::VolunteerJoinProcess joins(&simulation, &mediator, &reputation,
                                    spec, built.projects, params);
  joins.Start();
  simulation.RunUntil(100.0);
  EXPECT_EQ(joins.joined(), 7);
  EXPECT_EQ(registry.provider_count(), 12u);
}

// --- Full-scenario dynamics -----------------------------------------------------------

TEST(DynamicsScenarioTest, ChurnedSystemStillServesEverything) {
  experiments::ScenarioConfig config = experiments::WithCaptiveEnvironment(
      experiments::BaseDemoConfig(9, /*volunteers=*/60, /*duration=*/180.0));
  config.churn.enabled = true;
  config.churn.mean_online = 120.0;
  config.churn.mean_offline = 30.0;
  config.churn.initial_online_fraction = 0.8;
  const experiments::RunResult result = experiments::RunScenario(config);
  EXPECT_EQ(result.summary.queries_finalized,
            result.summary.queries_submitted);
  EXPECT_GT(result.summary.provider_offline_events, 20);
  // Some queries lost replicas to churn, but the system keeps serving.
  EXPECT_GT(result.summary.fully_served_fraction, 0.7);
}

TEST(DynamicsScenarioTest, JoinsGrowThePopulationAndServeQueries) {
  experiments::ScenarioConfig config = experiments::WithCaptiveEnvironment(
      experiments::BaseDemoConfig(10, /*volunteers=*/40, /*duration=*/240.0));
  config.joins.enabled = true;
  config.joins.rate = 0.25;
  config.joins.max_joins = 200;
  const experiments::RunResult result = experiments::RunScenario(config);
  EXPECT_GT(result.summary.provider_joins, 20);
  EXPECT_EQ(result.providers.size(),
            40u + static_cast<size_t>(result.summary.provider_joins));
  // Latecomers actually get work.
  int64_t late_performed = 0;
  for (size_t i = 40; i < result.providers.size(); ++i) {
    late_performed += result.providers[i].performed;
  }
  EXPECT_GT(late_performed, 0);
}

TEST(DynamicsScenarioTest, JoinsOffsetDeparturesInAutonomousRuns) {
  experiments::ScenarioConfig config = experiments::WithAutonomousEnvironment(
      experiments::BaseDemoConfig(11, /*volunteers=*/60, /*duration=*/400.0));
  config.departure.grace_period = 100.0;
  config.joins.enabled = true;
  config.joins.rate = 0.2;
  config.joins.max_joins = 500;
  const experiments::RunResult result = experiments::RunScenario(config);
  EXPECT_GT(result.summary.provider_joins, 0);
  EXPECT_GT(result.summary.provider_departures, 0);
  // The open system sustains service.
  EXPECT_EQ(result.summary.queries_finalized,
            result.summary.queries_submitted);
}

}  // namespace
}  // namespace sbqa
