// Zero-allocation regression test for the decision hot path: once the
// kernel's SoA planes and the pooled decision vectors are warm, Allocate
// must not touch the heap under either scoring kernel. The counting
// allocator replaces global new/delete for this binary (one TU only), so
// keep this test out of the sanitizer ctest filters — sanitizer runtimes
// allocate on their own schedule.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mediator.h"
#include "core/sbqa.h"
#include "core/score_kernel.h"
#include "model/reputation.h"
#include "sim/simulation.h"
#include "util/counting_alloc.h"

namespace sbqa::core {
namespace {

struct AllocHarness {
  AllocHarness(int providers, ScoreKernelKind kind) {
    sim::SimulationConfig sim_config;
    sim_config.seed = 13;
    sim_config.scoring_kernel = kind;
    simulation = std::make_unique<sim::Simulation>(sim_config);
    ConsumerParams consumer_params;
    consumer_params.policy_kind = model::ConsumerPolicyKind::kReputationTrading;
    registry.AddConsumer(consumer_params);
    for (int i = 0; i < providers; ++i) {
      ProviderParams params;
      params.capacity = 1.0 + 0.1 * i;
      params.policy_kind = model::ProviderPolicyKind::kUtilizationTrading;
      registry.AddProvider(params);
      candidates.push_back(i);
      registry.consumer(0).preferences().Set(i, 0.1 + 0.02 * i);
      registry.provider(i).preferences().Set(0, 0.5 - 0.01 * i);
    }
    reputation =
        std::make_unique<model::ReputationRegistry>(registry.provider_count());
    MediatorConfig config;
    config.scoring_kernel = kind;
    mediator = std::make_unique<Mediator>(
        simulation.get(), &registry, reputation.get(),
        std::make_unique<SbqaMethod>(SbqaParams{}), config);
  }

  /// In-place allocation into the pooled decision (Clear keeps capacity).
  void Allocate(SbqaMethod& method) {
    query.id = ++next_id;
    query.consumer = 0;
    query.n_results = 2;
    query.cost = 1.0;
    AllocationContext ctx;
    ctx.query = &query;
    ctx.candidates = &candidate_set;
    ctx.mediator = mediator.get();
    ctx.now = simulation->now();
    decision.Clear();
    method.Allocate(ctx, &decision);
  }

  std::unique_ptr<sim::Simulation> simulation;
  Registry registry;
  std::unique_ptr<model::ReputationRegistry> reputation;
  std::unique_ptr<Mediator> mediator;
  std::vector<model::ProviderId> candidates;
  CandidateSet candidate_set{&candidates};
  model::Query query;
  AllocationDecision decision;
  model::QueryId next_id = 0;
};

TEST(ScoreKernelAllocTest, SteadyStateDecisionPathAllocatesNothing) {
  for (ScoreKernelKind kind :
       {ScoreKernelKind::kExact, ScoreKernelKind::kBatched}) {
    AllocHarness h(32, kind);
    SbqaParams params;
    // k = 0 samples the whole explicit candidate list: the k < n branch of
    // the explicit-list CandidateSet is a documented test-only path that
    // allocates scratch (the mediation hot path runs on the pooled
    // candidate index instead, which this test cannot reach directly).
    params.knbest = KnBestParams{0, 8};
    params.scoring_kernel = kind;
    // Timing on: the steady-clock brackets must not allocate either.
    params.decision_timing = true;
    SbqaMethod method(params);
    // Warmup grows the kernel planes, the KnBest scratch and the pooled
    // decision vectors to their steady-state capacity.
    for (int i = 0; i < 20; ++i) h.Allocate(method);
    const uint64_t before = util::AllocationCount();
    for (int i = 0; i < 200; ++i) h.Allocate(method);
    const uint64_t allocs = util::AllocationCount() - before;
    EXPECT_EQ(allocs, 0u) << "kernel " << ToString(kind);
    EXPECT_EQ(method.kernel().phases().decisions, 220);
  }
}

}  // namespace
}  // namespace sbqa::core
