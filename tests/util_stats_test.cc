// Tests for streaming statistics, histograms and fairness indices.

#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sbqa::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(3.25);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.25);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(42);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(10, 3);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1);
  a.Add(2);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2);
  b.Merge(a);  // copy
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStatsTest, CvIsStddevOverMean) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0}) s.Add(v);
  EXPECT_NEAR(s.cv(), s.stddev() / 2.0, 1e-12);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(5);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, CountAndMean) {
  Histogram h(0, 10, 10);
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(HistogramTest, PercentilesOfUniformData) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 10000; ++i) h.Add(i % 100 + 0.5);
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(0.95), 95.0, 2.0);
  EXPECT_NEAR(h.Percentile(0.0), 0.5, 1.5);
  EXPECT_NEAR(h.Percentile(1.0), 99.5, 1.5);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h(0, 1, 4);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, OverflowAndUnderflowTracked) {
  Histogram h(0, 10, 5);
  h.Add(-5);
  h.Add(100);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 100.0);
  // Percentile endpoints fall back to true min/max for the outer cells.
  EXPECT_EQ(h.Percentile(0.0), -5.0);
  EXPECT_EQ(h.Percentile(1.0), 100.0);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a(0, 10, 10), b(0, 10, 10);
  a.Add(1);
  b.Add(9);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h(0, 10, 10);
  h.Add(2);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(GiniTest, AllEqualIsZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(GiniTest, MaximallyConcentrated) {
  // One participant holds everything: Gini -> (n-1)/n.
  EXPECT_NEAR(GiniCoefficient({0, 0, 0, 10}), 0.75, 1e-12);
}

TEST(GiniTest, EmptyAndZeroInputs) {
  EXPECT_EQ(GiniCoefficient({}), 0.0);
  EXPECT_EQ(GiniCoefficient({0, 0, 0}), 0.0);
}

TEST(GiniTest, KnownTwoValueCase) {
  // {1, 3}: Gini = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-12);
}

TEST(GiniTest, ScaleInvariant) {
  const double g1 = GiniCoefficient({1, 2, 3, 4});
  const double g2 = GiniCoefficient({10, 20, 30, 40});
  EXPECT_NEAR(g1, g2, 1e-12);
}

TEST(JainTest, AllEqualIsOne) {
  EXPECT_NEAR(JainFairnessIndex({3, 3, 3}), 1.0, 1e-12);
}

TEST(JainTest, SingleUserOfN) {
  // One of n users hogging everything: index = 1/n.
  EXPECT_NEAR(JainFairnessIndex({0, 0, 0, 8}), 0.25, 1e-12);
}

TEST(JainTest, EmptyIsOne) { EXPECT_EQ(JainFairnessIndex({}), 1.0); }

TEST(MeanTest, Basic) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
}

TEST(EwmaTest, FirstValueInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.Add(10);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesTowardConstant) {
  Ewma e(0.2);
  e.Add(0);
  for (int i = 0; i < 100; ++i) e.Add(10);
  EXPECT_NEAR(e.value(), 10.0, 0.01);
}

TEST(EwmaTest, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.Add(1);
  e.Add(7);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

// Property sweep: Gini in [0,1), Jain in (0,1] for random non-negative data.
class FairnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FairnessSweep, IndicesStayInRange) {
  Rng rng(GetParam());
  std::vector<double> values;
  const int n = 1 + static_cast<int>(rng.UniformInt(0, 63));
  for (int i = 0; i < n; ++i) values.push_back(rng.Uniform(0, 100));
  const double gini = GiniCoefficient(values);
  const double jain = JainFairnessIndex(values);
  EXPECT_GE(gini, 0.0);
  EXPECT_LT(gini, 1.0);
  EXPECT_GT(jain, 0.0);
  EXPECT_LE(jain, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessSweep,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace sbqa::util
