/// \file
/// The paper's §I motivating example, as a runnable scenario: a Google
/// AdWords-like system where clients (consumers) issue keyword queries and
/// commercial sites (providers) have interests per topic. One provider is a
/// pharmaceutical company that runs a *promotion campaign* for its new
/// insect repellent: during the campaign it is far more interested in
/// mosquito/insect-bite queries than in general ones; when the campaign
/// ends, its intentions revert.
///
/// The point of the demo: SbQA follows the *dynamic* intentions — the
/// pharma provider's share of insect-topic queries rises during the
/// campaign window and falls back afterwards — with no reconfiguration of
/// the mediator whatsoever.

#include <array>
#include <cstdio>
#include <memory>

#include "core/mediator.h"
#include "core/sbqa.h"
#include "metrics/collector.h"
#include "model/reputation.h"
#include "sim/simulation.h"
#include "util/ascii_chart.h"
#include "util/string_util.h"
#include "util/table.h"
#include "workload/generator.h"

using namespace sbqa;

namespace {

constexpr model::QueryClassId kGeneralTopic = 0;
constexpr model::QueryClassId kInsectTopic = 1;
constexpr double kCampaignStart = 200.0;
constexpr double kCampaignEnd = 400.0;
constexpr double kRunEnd = 600.0;

}  // namespace

int main() {
  std::printf("AdWords-style campaign demo (paper §I motivating example)\n");
  std::printf("=========================================================\n\n");

  sim::SimulationConfig sim_config;
  sim_config.seed = 123;
  sim::Simulation simulation(sim_config);
  core::Registry registry;

  // Two consumers: a stream of general queries and a stream of
  // insect-related queries (two "keyword topics").
  core::ConsumerParams consumer_params;
  consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
  consumer_params.n_results = 2;  // an ad slot shows two providers
  consumer_params.label = "general-queries";
  consumer_params.query_class = kGeneralTopic;
  const model::ConsumerId general = registry.AddConsumer(consumer_params);
  consumer_params.label = "insect-queries";
  consumer_params.query_class = kInsectTopic;
  const model::ConsumerId insect = registry.AddConsumer(consumer_params);

  // Providers: 11 ordinary advertisers plus the pharma company. Advertiser
  // interests are topic-agnostic and mild; pharma starts equally mild.
  const int kProviders = 12;
  const model::ProviderId pharma = 0;
  for (int i = 0; i < kProviders; ++i) {
    core::ProviderParams params;
    params.capacity = 1.5;
    params.policy_kind = model::ProviderPolicyKind::kUtilizationTrading;
    params.psi = 0.9;  // intentions are almost pure interest
    params.label = i == pharma ? "pharma-co" : util::StrFormat("site-%d", i);
    registry.AddProvider(params);
    for (model::ConsumerId c : {general, insect}) {
      registry.provider(i).preferences().Set(c, 0.3);
      registry.consumer(c).preferences().Set(i, 0.3);
    }
  }

  model::ReputationRegistry reputation(registry.provider_count());
  core::Mediator mediator(&simulation, &registry, &reputation,
                          std::make_unique<core::SbqaMethod>([] {
                            core::SbqaParams params;
                            params.knbest = core::KnBestParams{12, 6};
                            return params;
                          }()));
  metrics::Collector collector(&simulation, &registry, &mediator, 10.0);
  collector.Start(kRunEnd);

  // The campaign: preferences are *dynamic data* — the provider simply
  // changes them mid-run and the next mediations see the new intentions.
  simulation.scheduler().ScheduleAt(kCampaignStart, [&registry, insect,
                                                     general] {
    std::printf("[t=%4.0fs] pharma-co launches its repellent campaign\n",
                kCampaignStart);
    registry.provider(pharma).preferences().Set(insect, 0.98);
    registry.provider(pharma).preferences().Set(general, -0.2);
  });
  simulation.scheduler().ScheduleAt(kCampaignEnd, [&registry, insect,
                                                   general] {
    std::printf("[t=%4.0fs] campaign over; intentions revert\n",
                kCampaignEnd);
    registry.provider(pharma).preferences().Set(insect, 0.3);
    registry.provider(pharma).preferences().Set(general, 0.3);
  });

  // Track pharma's share of insect-topic allocations in 50s buckets.
  struct ShareTracker : core::MediationObserver {
    void OnQueryCompleted(const core::QueryOutcome& outcome) override {
      if (outcome.query.query_class != kInsectTopic) return;
      const size_t bucket =
          static_cast<size_t>(outcome.completed_at / 50.0);
      if (bucket >= total.size()) return;
      total[bucket] += outcome.performers.size();
      for (model::ProviderId p : outcome.performers) {
        if (p == 0) pharma_hits[bucket] += 1;
      }
    }
    std::array<double, 12> pharma_hits{};
    std::array<double, 12> total{};
  } shares;
  mediator.AddObserver(&shares);

  // Workload: both topics at 2 queries/s.
  workload::QueryIdSource ids;
  workload::ArrivalParams arrivals;
  arrivals.rate = 2.0;
  arrivals.end_time = kRunEnd;
  workload::QueryGenerator general_gen(&simulation, &mediator, &ids, general,
                                       arrivals,
                                       workload::CostModel::Constant(2.0));
  workload::QueryGenerator insect_gen(&simulation, &mediator, &ids, insect,
                                      arrivals,
                                      workload::CostModel::Constant(2.0));
  general_gen.Start();
  insect_gen.Start();
  simulation.RunUntil(kRunEnd + 30.0);

  // Report: pharma's share of insect-query allocations over time.
  std::printf("\npharma-co's share of insect-topic allocations "
              "(fair share = 1/12 = 0.083):\n\n");
  std::vector<std::string> labels;
  std::vector<double> values;
  for (size_t b = 0; b < shares.total.size(); ++b) {
    labels.push_back(util::StrFormat("t=%3zu-%3zus%s", b * 50, b * 50 + 50,
                                     (b * 50 >= kCampaignStart &&
                                      b * 50 < kCampaignEnd)
                                         ? " [campaign]"
                                         : ""));
    values.push_back(shares.total[b] > 0
                         ? shares.pharma_hits[b] / shares.total[b]
                         : 0.0);
  }
  std::printf("%s\n", util::RenderBarChart(labels, values).c_str());

  std::printf(
      "During the campaign the mediator funnels insect queries to the\n"
      "eager advertiser (intention 0.98 vs everyone's 0.3); afterwards the\n"
      "share falls back toward fair. Nothing was reconfigured: intentions\n"
      "are live data, gathered per mediation — the paper's AdWords story.\n");
  return 0;
}
