/// \file
/// Playing a BOINC participant (paper Scenario 7). You take the role of a
/// volunteer: pick how much you like each of the three demo projects, and
/// see — mediation by mediation — whether each allocation technique lets
/// you reach your objectives.
///
/// Usage: play_participant [pref_seti] [pref_proteins] [pref_einstein]
///   preferences in [-1, 1]; default: a die-hard Einstein@home fan
///   (-0.8 -0.5 0.95).

#include <cstdio>
#include <cstdlib>

#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace sbqa;

int main(int argc, char** argv) {
  double prefs[3] = {-0.8, -0.5, 0.95};
  for (int i = 0; i < 3 && i + 1 < argc; ++i) {
    prefs[i] = std::atof(argv[i + 1]);
  }

  std::printf("You are a BOINC volunteer with preferences:\n");
  std::printf("  SETI@home:      %+.2f\n", prefs[0]);
  std::printf("  proteins@home:  %+.2f\n", prefs[1]);
  std::printf("  Einstein@home:  %+.2f\n\n", prefs[2]);

  experiments::ScenarioConfig config =
      experiments::BaseDemoConfig(/*seed=*/11, /*volunteers=*/120,
                                  /*duration=*/480.0);
  const auto user_prefs = prefs;
  config.population_hook = [user_prefs](
                               core::Registry* registry,
                               const boinc::BuiltPopulation& population,
                               util::Rng*) {
    core::Provider& you = registry->provider(population.volunteers.back());
    for (size_t j = 0; j < population.projects.size() && j < 3; ++j) {
      you.preferences().Set(population.projects[j], user_prefs[j]);
    }
  };

  util::TextTable table;
  table.SetHeader({"mediation", "your.satisfaction", "your.adequation",
                   "queries.performed", "busy%", "verdict"});
  std::string best_method;
  double best_satisfaction = -1;
  for (const experiments::MethodSpec& method : experiments::AllMethods()) {
    experiments::ScenarioConfig run_config = config;
    run_config.method = method;
    const experiments::RunResult result =
        experiments::RunScenario(run_config);
    const metrics::ParticipantSnapshot& you = result.providers.back();
    const char* verdict = you.satisfaction >= 0.7   ? "thriving"
                          : you.satisfaction >= 0.35 ? "tolerable"
                                                     : "would quit";
    table.AddRow({result.summary.method,
                  util::FormatDouble(you.satisfaction, 3),
                  util::FormatDouble(you.adequation, 3),
                  util::StrFormat("%lld",
                                  static_cast<long long>(you.performed)),
                  util::FormatDouble(100 * you.busy_fraction, 1), verdict});
    if (you.satisfaction > best_satisfaction) {
      best_satisfaction = you.satisfaction;
      best_method = result.summary.method;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("The mediation that served you best: %s (satisfaction %.3f)\n",
              best_method.c_str(), best_satisfaction);
  std::printf(
      "\n(The 0.35 verdict threshold is the paper's Scenario-2 departure\n"
      "point: below it, a real volunteer walks away.)\n");
  return 0;
}
