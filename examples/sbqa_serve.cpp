/// \file
/// sbqa_serve — the identical SbQA mediation pipeline serving live
/// wall-clock traffic: a driver thread submits queries through the
/// sbqa::Engine facade against rt::WallClockRuntime (steady-clock time,
/// timer wheel, one service thread), outcomes come back through per-query
/// callbacks, and the steady-state Submit path performs zero heap
/// allocations per query (measured live by the counting allocator).
///
///   sbqa_serve [--queries=N] [--rate=Q_PER_S] [--providers=N]
///              [--shards=N] [--method=NAME] [--seed=N]
///              [--score-kernel=batched|exact]
///              [--fault-profile=none|drops|delays|crashes|chaos]
///              [--deadline-ms=N] [--max-retries=N] [--max-pending=N]
///              [--federation-hops=N] [--federation-topology=mesh|ring|kregular]
///              [--federation-degree=N] [--federation-digest-weight=W]
///              [--json]
///
/// --score-kernel selects the decision-path scoring kernel (the batched
/// SoA planes by default; exact = the per-candidate std::pow pipeline);
/// --json replaces the human report with a machine-readable summary that
/// includes the kernel name and its per-phase decision timings.
///
/// The robustness flags exercise the hardened lifecycle under live
/// traffic: --fault-profile interposes the deterministic fault plane,
/// --deadline-ms/--max-retries bound and recover each query, and
/// --max-pending sheds (newest first, synchronously on the driver thread)
/// once that many queries are in flight. The tail of the report breaks
/// every outcome down by the terminal taxonomy.
///
/// --shards=N serves on the thread-per-shard backend (one worker per
/// shard, barrier-connected); while traffic flows the driver prints a
/// live per-shard stats line — queries/s, pending, shed and cross-shard
/// borrow counts — read at a quiescent barrier via Engine::ShardStats().
///
/// --federation-hops=N (sharded only) enables multi-hop borrow chains: a
/// dry shard forwards mediator-to-mediator up to N hops instead of the
/// single-hop delegation. --federation-topology / --federation-degree pick
/// the peer graph, --federation-digest-weight blends the cross-shard
/// satisfaction exchange into forward scoring (0 = pure load metric).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sbqa.h"
#include "util/counting_alloc.h"

using namespace sbqa;

namespace {

struct Flags {
  long queries = 5000;
  double rate = 2000;  // queries per wall second
  int providers = 16;
  int shards = 1;
  std::string method = "sbqa";
  uint64_t seed = 42;
  std::string score_kernel = "batched";
  std::string fault_profile = "none";
  double deadline_ms = 0;
  int max_retries = 0;
  long max_pending = 0;
  int federation_hops = 0;  // 0 = federation off (legacy delegation)
  std::string federation_topology = "mesh";
  int federation_degree = 4;
  double federation_digest_weight = 0;
  bool json = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--queries", &value)) {
      flags.queries = std::atol(value.c_str());
    } else if (ParseFlag(argv[i], "--rate", &value)) {
      flags.rate = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--providers", &value)) {
      flags.providers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      flags.shards = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--method", &value)) {
      flags.method = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      flags.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--score-kernel", &value)) {
      flags.score_kernel = value;
    } else if (ParseFlag(argv[i], "--fault-profile", &value)) {
      flags.fault_profile = value;
    } else if (ParseFlag(argv[i], "--deadline-ms", &value)) {
      flags.deadline_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--max-retries", &value)) {
      flags.max_retries = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-pending", &value)) {
      flags.max_pending = std::atol(value.c_str());
    } else if (ParseFlag(argv[i], "--federation-hops", &value)) {
      flags.federation_hops = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--federation-topology", &value)) {
      flags.federation_topology = value;
    } else if (ParseFlag(argv[i], "--federation-degree", &value)) {
      flags.federation_degree = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--federation-digest-weight", &value)) {
      flags.federation_digest_weight = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--json") == 0) {
      flags.json = true;
    } else {
      std::fprintf(stderr,
                   "usage: sbqa_serve [--queries=N] [--rate=Q_PER_S] "
                   "[--providers=N] [--shards=N] [--method=NAME] [--seed=N]\n"
                   "                  [--score-kernel=batched|exact]\n"
                   "                  [--fault-profile=%s]\n"
                   "                  [--deadline-ms=N] [--max-retries=N] "
                   "[--max-pending=N]\n"
                   "                  [--federation-hops=N] "
                   "[--federation-topology=mesh|ring|kregular]\n"
                   "                  [--federation-degree=N] "
                   "[--federation-digest-weight=W] [--json]\n",
                   rt::FaultProfileNames().c_str());
      return 2;
    }
  }
  if (flags.queries <= 0 || flags.rate <= 0 || flags.providers <= 0 ||
      flags.shards <= 0 || flags.deadline_ms < 0 || flags.max_retries < 0 ||
      flags.max_pending < 0 || flags.federation_hops < 0 ||
      flags.federation_degree < 2 || flags.federation_digest_weight < 0) {
    return 2;
  }

  if (!flags.json) {
    std::printf("sbqa_serve: %ld queries at ~%.0f/s over %d providers, "
                "method %s (wall-clock runtime, %d shard%s)\n\n",
                flags.queries, flags.rate, flags.providers,
                flags.method.c_str(), flags.shards,
                flags.shards == 1 ? "" : "s");
  }

  EngineOptions options;
  options.mode = EngineMode::kWallClock;
  options.seed = flags.seed;
  options.method = flags.method;
  if (!core::ScoreKernelKindFromName(flags.score_kernel,
                                     &options.scoring_kernel)) {
    std::fprintf(stderr, "unknown score kernel: %s (known: batched, exact)\n",
                 flags.score_kernel.c_str());
    return 2;
  }
  // The JSON summary carries the per-phase decision timings.
  options.decision_timing = flags.json;
  options.shards = static_cast<uint32_t>(flags.shards);
  // Short safety-net timeout: the sweep then passes often enough for the
  // FIFO timeout ring to stay compact at steady state.
  options.query_timeout = 2.0;
  // A small wheel (128 ms rotation) converges each bucket's capacity fast.
  options.wallclock.wheel_slots = 128;
  if (!rt::FaultProfileByName(flags.fault_profile, &options.fault_plan)) {
    std::fprintf(stderr, "unknown fault profile: %s (known: %s)\n",
                 flags.fault_profile.c_str(),
                 rt::FaultProfileNames().c_str());
    return 2;
  }
  options.default_deadline = flags.deadline_ms / 1000.0;
  options.max_retries = flags.max_retries;
  if (flags.max_retries > 0) {
    options.failure_threshold = 3;
    options.probe_delay = 1.0;  // live traffic: probe suspects back fast
    if (flags.deadline_ms > 0) {
      // Split the deadline across the attempt budget: a retry can only
      // fire if the attempt times out BEFORE the absolute deadline.
      options.query_timeout =
          std::min(options.query_timeout,
                   flags.deadline_ms / 1000.0 / (flags.max_retries + 1));
    }
  }
  options.max_pending = flags.max_pending;
  if (flags.federation_hops > 0) {
    options.federation.enabled = true;
    options.federation.hop_budget =
        static_cast<uint32_t>(flags.federation_hops);
    options.federation.degree = static_cast<uint32_t>(flags.federation_degree);
    options.federation.digest_weight = flags.federation_digest_weight;
    if (!federation::TopologyFromName(flags.federation_topology.c_str(),
                                      &options.federation.topology)) {
      std::fprintf(stderr,
                   "unknown federation topology: %s "
                   "(known: mesh, ring, kregular)\n",
                   flags.federation_topology.c_str());
      return 2;
    }
  }
  Engine engine(std::move(options));

  ConsumerOptions consumer_options;
  consumer_options.n_results = 2;
  consumer_options.label = "live-frontend";
  const model::ConsumerId consumer = engine.AddConsumer(consumer_options);
  for (int i = 0; i < flags.providers; ++i) {
    ProviderOptions provider_options;
    provider_options.capacity = 1.0 + 0.125 * (i % 8);
    provider_options.label = "worker-" + std::to_string(i);
    const model::ProviderId p = engine.AddProvider(provider_options);
    engine.SetConsumerPreference(consumer, p, i % 2 == 0 ? 0.6 : -0.3);
    engine.SetProviderPreference(p, consumer, i % 3 == 0 ? 0.7 : 0.1);
  }
  engine.Start();

  std::atomic<long> delivered{0};
  std::atomic<long> served{0};
  // Terminal taxonomy, counted from the per-query callbacks (shed ones run
  // synchronously on the driver thread, the rest on the service thread).
  std::atomic<long> satisfied{0};
  std::atomic<long> retried{0};
  std::atomic<long> timed_out{0};
  std::atomic<long> failed{0};
  std::atomic<long> shed{0};
  const auto callback = [&](const QueryResult& result) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    if (result.results_received >= result.results_required) {
      served.fetch_add(1, std::memory_order_relaxed);
    }
    switch (result.outcome) {
      case core::OutcomeKind::kSatisfied:
        satisfied.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::OutcomeKind::kRetried:
        retried.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::OutcomeKind::kTimedOut:
        timed_out.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::OutcomeKind::kFailed:
        failed.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::OutcomeKind::kShed:
        shed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  };

  // The driver thread: paced submissions in small bursts. The first fifth
  // warms every pool (tickets, timer wheel, in-flight slots); the rest is
  // the measured steady state.
  const long warmup = flags.queries / 5;
  constexpr int kBurst = 50;
  const auto burst_gap = std::chrono::duration<double>(kBurst / flags.rate);
  uint64_t steady_allocs_before = 0;
  long steady_queries = 0;

  QueryRequest request;
  request.consumer = consumer;
  request.n_results = 2;
  request.cost = 0.0005;  // ~0.5 ms of work on a capacity-1 provider

  // Live per-shard stats line, ~1/s while traffic flows (sharded runs
  // only): ShardStats() reads every shard at a quiescent barrier, so the
  // rows are a consistent cross-shard cut even mid-traffic.
  std::vector<long long> last_finalized(
      flags.shards > 1 ? static_cast<size_t>(flags.shards) : 0, 0);
  auto last_stats = std::chrono::steady_clock::now();
  const auto print_shard_stats = [&](double dt) {
    const std::vector<EngineShardStats> rows = engine.ShardStats();
    std::printf("  [shards]");
    for (const EngineShardStats& row : rows) {
      const long long finalized = row.queries_finalized;
      const double qps =
          (finalized - last_finalized[row.shard]) / std::max(dt, 1e-9);
      last_finalized[row.shard] = finalized;
      std::printf(" s%u %.0f/s pend %lld", row.shard, qps,
                  static_cast<long long>(row.queries_submitted - finalized));
    }
    long long borrowed = 0;
    long long forwarded = 0;
    for (const EngineShardStats& row : rows) {
      borrowed += row.queries_borrowed;
      forwarded += row.queries_forwarded;
    }
    std::printf(" | shed %ld | borrowed %lld", shed.load(), borrowed);
    if (forwarded > 0) std::printf(" | forwarded %lld", forwarded);
    std::printf("\n");
    std::fflush(stdout);
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (long submitted = 0; submitted < flags.queries;) {
    if (steady_queries == 0 && submitted >= warmup) {
      steady_allocs_before = util::AllocationCount();
      steady_queries = flags.queries - submitted;
    }
    const long burst_end = std::min<long>(submitted + kBurst, flags.queries);
    for (; submitted < burst_end; ++submitted) {
      engine.Submit(request, OutcomeCallback(callback));
    }
    std::this_thread::sleep_for(burst_gap);
    if (flags.shards > 1 && !flags.json) {
      const auto now = std::chrono::steady_clock::now();
      const double dt =
          std::chrono::duration<double>(now - last_stats).count();
      if (dt >= 1.0) {
        last_stats = now;
        print_shard_stats(dt);
      }
    }
  }
  const bool drained = engine.WaitIdle(10.0);
  const uint64_t steady_allocs =
      util::AllocationCount() - steady_allocs_before;
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const EngineStats stats = engine.Stats();
  if (flags.json) {
    const core::ScoreKernelPhases phases = engine.DecisionPhases();
    const std::string kernel = engine.ScoringKernelName();
    engine.Stop();
    std::printf("{\n");
    std::printf("  \"queries\": %ld,\n", flags.queries);
    std::printf("  \"drained\": %s,\n", drained ? "true" : "false");
    std::printf("  \"outcomes_delivered\": %ld,\n", delivered.load());
    std::printf("  \"wall_seconds\": %.6f,\n", wall_seconds);
    std::printf("  \"queries_per_second\": %.1f,\n",
                static_cast<double>(flags.queries) / wall_seconds);
    std::printf("  \"mean_response_time\": %.6f,\n",
                stats.mean_response_time);
    std::printf("  \"mean_satisfaction\": %.6f,\n", stats.mean_satisfaction);
    std::printf("  \"steady_allocs_per_query\": %.4f,\n",
                steady_queries > 0 ? static_cast<double>(steady_allocs) /
                                         static_cast<double>(steady_queries)
                                   : 0.0);
    std::printf("  \"scoring_kernel\": \"%s\",\n", kernel.c_str());
    std::printf("  \"decisions_timed\": %lld,\n",
                static_cast<long long>(phases.decisions));
    std::printf("  \"decision_sample_ns\": %.0f,\n", phases.sample_ns);
    std::printf("  \"decision_gather_ns\": %.0f,\n", phases.gather_ns);
    std::printf("  \"decision_intentions_ns\": %.0f,\n",
                phases.intentions_ns);
    std::printf("  \"decision_score_ns\": %.0f,\n", phases.score_ns);
    std::printf("  \"decision_rank_ns\": %.0f\n", phases.rank_ns);
    std::printf("}\n");
    const bool ok = drained && delivered.load() == flags.queries;
    if (!ok) std::fprintf(stderr, "\nFAILED: traffic did not drain cleanly\n");
    return ok ? 0 : 1;
  }
  std::printf("drained            : %s\n", drained ? "yes" : "NO");
  std::printf("outcomes delivered : %ld (%ld fully served)\n",
              delivered.load(), served.load());
  std::printf("wall time          : %.2f s (%.0f queries/s)\n", wall_seconds,
              static_cast<double>(flags.queries) / wall_seconds);
  std::printf("mean response time : %.4f s\n", stats.mean_response_time);
  std::printf("mean satisfaction  : %.3f\n", stats.mean_satisfaction);
  std::printf("outcome taxonomy   : %ld satisfied, %ld retried, "
              "%ld timed out, %ld failed, %ld shed\n",
              satisfied.load(), retried.load(), timed_out.load(),
              failed.load(), shed.load());
  if (stats.queries_delegated > 0 || stats.queries_forwarded > 0) {
    std::printf("cross-shard        : %lld delegated, %lld borrowed, "
                "%lld forwarded\n",
                static_cast<long long>(stats.queries_delegated),
                static_cast<long long>(stats.queries_borrowed),
                static_cast<long long>(stats.queries_forwarded));
  }
  if (stats.retry_attempts > 0 || stats.providers_suspected > 0) {
    std::printf("recovery           : %lld retries, %lld suspected, "
                "%lld probed\n",
                static_cast<long long>(stats.retry_attempts),
                static_cast<long long>(stats.providers_suspected),
                static_cast<long long>(stats.providers_probed));
  }
  if (stats.fault_sends_dropped + stats.fault_sends_delayed +
          stats.fault_sends_crashed >
      0) {
    std::printf("faults injected    : %lld dropped, %lld delayed, "
                "%lld crashed\n",
                static_cast<long long>(stats.fault_sends_dropped),
                static_cast<long long>(stats.fault_sends_delayed),
                static_cast<long long>(stats.fault_sends_crashed));
  }
  std::printf("steady-state allocations/query: %.4f (%llu over %ld queries)\n",
              static_cast<double>(steady_allocs) /
                  static_cast<double>(steady_queries),
              static_cast<unsigned long long>(steady_allocs), steady_queries);

  const EngineSnapshot snapshot = engine.Snapshot();
  std::printf("\nper-provider (first 4):\n");
  for (size_t i = 0; i < snapshot.providers.size() && i < 4; ++i) {
    const ProviderSnapshot& p = snapshot.providers[i];
    std::printf("  %-10s satisfaction %.3f, %lld instances, busy %.2fs\n",
                p.label.c_str(), p.satisfaction,
                static_cast<long long>(p.instances_performed),
                p.busy_seconds);
  }
  engine.Stop();

  const bool ok = drained && delivered.load() == flags.queries;
  if (!ok) std::fprintf(stderr, "\nFAILED: traffic did not drain cleanly\n");
  return ok ? 0 : 1;
}
