/// \file
/// Quickstart: wire the SbQA stack by hand — simulation, registry,
/// mediator — submit queries, and inspect satisfaction. This walks exactly
/// the architecture of paper Fig. 1 (consumer -> mediator -> KnBest ->
/// SQLB scoring -> providers) without the experiment harness.

#include <cstdio>

#include "core/mediator.h"
#include "core/sbqa.h"
#include "model/reputation.h"
#include "sim/simulation.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace sbqa;

int main() {
  std::printf("SbQA quickstart: one consumer, eight providers, 200 queries\n");
  std::printf("============================================================\n\n");

  // 1. The simulation substrate (event scheduler + latency-modelled
  //    network). Everything is deterministic under the seed.
  sim::SimulationConfig sim_config;
  sim_config.seed = 7;
  sim::Simulation simulation(sim_config);

  // 2. Participants. One consumer that loves even-numbered providers and
  //    dislikes odd ones; eight providers with mixed feelings about it.
  core::Registry registry;

  core::ConsumerParams consumer_params;
  consumer_params.memory_k = 50;
  consumer_params.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
  consumer_params.n_results = 2;  // two replicas per query
  consumer_params.label = "demo-consumer";
  const model::ConsumerId consumer = registry.AddConsumer(consumer_params);

  for (int i = 0; i < 8; ++i) {
    core::ProviderParams provider_params;
    provider_params.capacity = 1.0 + 0.25 * i;  // heterogeneous speeds
    provider_params.memory_k = 50;
    provider_params.policy_kind =
        model::ProviderPolicyKind::kUtilizationTrading;
    provider_params.psi = 0.8;
    provider_params.label = util::StrFormat("provider-%d", i);
    const model::ProviderId p = registry.AddProvider(provider_params);
    // The consumer's preferences: +0.8 for even providers, -0.5 for odd.
    registry.consumer(consumer).preferences().Set(p, i % 2 == 0 ? 0.8 : -0.5);
    // The provider's preference for this consumer: providers 0-3 like it,
    // 4-7 are lukewarm-to-negative.
    registry.provider(p).preferences().Set(consumer, i < 4 ? 0.7 : -0.2);
  }

  // 3. Reputation registry (fed by result validation; everyone starts at
  //    the 0.5 prior) and the mediator running the SbQA method.
  model::ReputationRegistry reputation(registry.provider_count());

  core::SbqaParams sbqa_params;
  sbqa_params.knbest = core::KnBestParams{6, 4};  // k=6 random, kn=4 best
  sbqa_params.omega_mode = core::OmegaMode::kAdaptive;
  core::Mediator mediator(&simulation, &registry, &reputation,
                          std::make_unique<core::SbqaMethod>(sbqa_params));

  // 4. Submit 200 queries, one every 0.5 simulated seconds.
  for (int i = 0; i < 200; ++i) {
    simulation.scheduler().ScheduleAt(0.5 * i, [&mediator, consumer, i] {
      model::Query query;
      query.id = i + 1;
      query.consumer = consumer;
      query.n_results = 2;
      query.cost = 2.0;  // seconds of work on a capacity-1 provider
      mediator.SubmitQuery(query);
    });
  }
  simulation.RunUntil(150.0);

  // 5. Inspect the outcome: long-run satisfactions (Definitions 1 and 2).
  const core::MediatorStats& stats = mediator.stats();
  std::printf("queries finalized : %lld\n",
              static_cast<long long>(stats.queries_finalized));
  std::printf("mean response time: %.3f s\n", stats.response_time.mean());
  std::printf("consumer satisfaction (Def. 1): %.3f\n\n",
              registry.consumer(consumer).satisfaction());

  util::TextTable table;
  table.SetHeader({"provider", "cons.pref", "prov.pref", "satisfaction",
                   "adequation", "performed", "busy(s)"});
  for (const core::Provider& p : registry.providers()) {
    table.AddRow({p.params().label,
                  util::FormatDouble(
                      registry.consumer(consumer).preferences().Get(p.id()), 2),
                  util::FormatDouble(p.preferences().Get(consumer), 2),
                  util::FormatDouble(p.satisfaction(), 3),
                  util::FormatDouble(p.satisfaction_tracker().adequation(), 3),
                  util::StrFormat("%lld", static_cast<long long>(
                                              p.instances_performed())),
                  util::FormatDouble(p.busy_seconds(), 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Note how mutually interested pairs (providers 0 and 2) collect both\n"
      "queries and satisfaction, one-sided interest still gets served when\n"
      "the favorites are busy, and mutual disinterest (providers 5 and 7)\n"
      "is correctly starved.\n");
  return 0;
}
