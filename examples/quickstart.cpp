/// \file
/// Quickstart: the SbQA stack through its public facade — build a
/// population on sbqa::Engine, submit queries, inspect satisfaction. This
/// walks exactly the architecture of paper Fig. 1 (consumer -> mediator ->
/// KnBest -> SQLB scoring -> providers) without touching the wiring
/// (registry, reputation, mediator) or the simulation internals; flipping
/// EngineOptions::mode to kWallClock serves the same pipeline live (see
/// examples/sbqa_serve.cpp).

#include <cstdio>

#include "sbqa.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace sbqa;

int main() {
  std::printf("SbQA quickstart: one consumer, eight providers, 200 queries\n");
  std::printf("============================================================\n\n");

  // 1. The engine in simulated mode: virtual time, latency-modelled
  //    message hops, fully deterministic under the seed.
  EngineOptions options;
  options.mode = EngineMode::kSimulated;
  options.seed = 7;
  options.method = "sbqa";
  Engine engine(std::move(options));

  // 2. Participants. One consumer that loves even-numbered providers and
  //    dislikes odd ones; eight providers with mixed feelings about it.
  ConsumerOptions consumer_options;
  consumer_options.memory_k = 50;
  consumer_options.policy_kind = model::ConsumerPolicyKind::kPreferenceOnly;
  consumer_options.n_results = 2;  // two replicas per query
  consumer_options.label = "demo-consumer";
  const model::ConsumerId consumer = engine.AddConsumer(consumer_options);

  double consumer_preference[8];
  double provider_preference[8];
  for (int i = 0; i < 8; ++i) {
    ProviderOptions provider_options;
    provider_options.capacity = 1.0 + 0.25 * i;  // heterogeneous speeds
    provider_options.memory_k = 50;
    provider_options.policy_kind =
        model::ProviderPolicyKind::kUtilizationTrading;
    provider_options.psi = 0.8;
    provider_options.label = util::StrFormat("provider-%d", i);
    const model::ProviderId p = engine.AddProvider(provider_options);
    // The consumer's preferences: +0.8 for even providers, -0.5 for odd.
    consumer_preference[i] = i % 2 == 0 ? 0.8 : -0.5;
    engine.SetConsumerPreference(consumer, p, consumer_preference[i]);
    // The provider's preference for this consumer: providers 0-3 like it,
    // 4-7 are lukewarm-to-negative.
    provider_preference[i] = i < 4 ? 0.7 : -0.2;
    engine.SetProviderPreference(p, consumer, provider_preference[i]);
  }

  // 3. Start (wires reputation + the SbQA mediator) and submit 200
  //    queries, one every 0.5 simulated seconds. Outcomes arrive through
  //    the per-query callback.
  engine.Start();
  int64_t fully_served = 0;
  for (int i = 0; i < 200; ++i) {
    QueryRequest request;
    request.consumer = consumer;
    request.n_results = 2;
    request.cost = 2.0;  // seconds of work on a capacity-1 provider
    engine.Submit(request, [&fully_served](const QueryResult& result) {
      if (result.results_received >= result.results_required) ++fully_served;
    });
    engine.RunFor(0.5);
  }
  engine.WaitIdle(60.0);

  // 4. Inspect the outcome: long-run satisfactions (Definitions 1 and 2).
  const EngineStats stats = engine.Stats();
  const EngineSnapshot snapshot = engine.Snapshot();
  std::printf("queries finalized : %lld (%lld fully served)\n",
              static_cast<long long>(stats.queries_finalized),
              static_cast<long long>(fully_served));
  std::printf("mean response time: %.3f s\n", stats.mean_response_time);
  std::printf("consumer satisfaction (Def. 1): %.3f\n\n",
              snapshot.consumers[0].satisfaction);

  util::TextTable table;
  table.SetHeader({"provider", "cons.pref", "prov.pref", "satisfaction",
                   "adequation", "performed", "busy(s)"});
  for (size_t i = 0; i < snapshot.providers.size(); ++i) {
    const ProviderSnapshot& p = snapshot.providers[i];
    table.AddRow({p.label, util::FormatDouble(consumer_preference[i], 2),
                  util::FormatDouble(provider_preference[i], 2),
                  util::FormatDouble(p.satisfaction, 3),
                  util::FormatDouble(p.adequation, 3),
                  util::StrFormat("%lld", static_cast<long long>(
                                              p.instances_performed)),
                  util::FormatDouble(p.busy_seconds, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Note how mutually interested pairs (providers 0 and 2) collect both\n"
      "queries and satisfaction, one-sided interest still gets served when\n"
      "the favorites are busy, and mutual disinterest (providers 5 and 7)\n"
      "is correctly starved.\n");
  return 0;
}
