/// \file
/// Tuning SbQA to an application (paper Scenario 6): sweep KnBest's kn and
/// the scoring balance ω on a grid-computing-on-volunteers setup and render
/// the response-time vs provider-satisfaction trade-off as bar charts.
///
/// Usage: adaptability [volunteers] [duration_seconds]

#include <cstdio>
#include <cstdlib>

#include "experiments/demo_scenarios.h"
#include "experiments/runner.h"
#include "util/ascii_chart.h"
#include "util/string_util.h"

using namespace sbqa;

int main(int argc, char** argv) {
  const size_t volunteers =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;
  const double duration = argc > 2 ? std::atof(argv[2]) : 480.0;

  std::printf("SbQA application adaptability (kn and omega knobs)\n");
  std::printf("==================================================\n\n");

  experiments::ScenarioConfig base = experiments::Scenario6Config(/*seed=*/7);
  const double ratio = static_cast<double>(volunteers) /
                       static_cast<double>(base.population.volunteers.count);
  base.population.volunteers.count = volunteers;
  for (auto& project : base.population.projects) {
    project.arrival_rate *= ratio;
  }
  base.duration = duration;
  base.departure.grace_period = duration / 4;

  // --- kn sweep -------------------------------------------------------------
  std::vector<std::string> kn_labels;
  std::vector<double> kn_rt, kn_sat, kn_kept;
  for (size_t kn : {1u, 2u, 4u, 8u, 16u}) {
    core::SbqaParams params = experiments::DefaultSbqaParams();
    params.knbest = core::KnBestParams{16, kn};
    experiments::ScenarioConfig config = base;
    config.method = experiments::MethodSpec::Sbqa(params);
    const experiments::RunResult result = experiments::RunScenario(config);
    kn_labels.push_back(util::StrFormat("kn=%-2zu", kn));
    kn_rt.push_back(result.summary.mean_response_time);
    kn_sat.push_back(result.summary.provider_satisfaction);
    kn_kept.push_back(result.summary.provider_retention);
  }

  std::printf("mean response time (s) by kn — small kn = stronger load "
              "filter:\n%s\n",
              util::RenderBarChart(kn_labels, kn_rt).c_str());
  std::printf("provider satisfaction by kn — large kn = interests rule:\n%s\n",
              util::RenderBarChart(kn_labels, kn_sat).c_str());
  std::printf("volunteer retention by kn:\n%s\n",
              util::RenderBarChart(kn_labels, kn_kept).c_str());

  // --- omega sweep ------------------------------------------------------------
  std::vector<std::string> omega_labels;
  std::vector<double> omega_cons, omega_prov;
  for (double omega : {0.0, 0.5, 1.0}) {
    core::SbqaParams params = experiments::DefaultSbqaParams();
    params.omega_mode = core::OmegaMode::kFixed;
    params.fixed_omega = omega;
    experiments::ScenarioConfig config = base;
    config.method = experiments::MethodSpec::Sbqa(params);
    const experiments::RunResult result = experiments::RunScenario(config);
    omega_labels.push_back(util::StrFormat("w=%.1f", omega));
    omega_cons.push_back(result.summary.consumer_satisfaction);
    omega_prov.push_back(result.summary.provider_satisfaction);
  }
  {
    core::SbqaParams params = experiments::DefaultSbqaParams();  // adaptive
    experiments::ScenarioConfig config = base;
    config.method = experiments::MethodSpec::Sbqa(params);
    const experiments::RunResult result = experiments::RunScenario(config);
    omega_labels.push_back("w=eq2");
    omega_cons.push_back(result.summary.consumer_satisfaction);
    omega_prov.push_back(result.summary.provider_satisfaction);
  }

  std::printf("consumer satisfaction by omega (0 = consumers first):\n%s\n",
              util::RenderBarChart(omega_labels, omega_cons).c_str());
  std::printf("provider satisfaction by omega (1 = providers first):\n%s\n",
              util::RenderBarChart(omega_labels, omega_prov).c_str());

  std::printf(
      "Pick the knobs for your application: a response-time SLA wants a\n"
      "small kn (or omega near 0); volunteer retention wants a large kn\n"
      "(or omega near 1); Equation 2 (w=eq2) self-balances the two.\n");
  return 0;
}
