/// \file
/// sbqa_cli — run any allocation technique on the BOINC demo workload from
/// the command line. The "give it to a user" binary: every scenario knob
/// the bench harness uses is exposed as a flag.
///
///   sbqa_cli [--method=sbqa|sqlb|knbest|capacity|qlb|economic|
///             interest|random|roundrobin]
///            [--volunteers=N] [--duration=S] [--seed=N]
///            [--env=captive|autonomous] [--mediators=N] [--shards=N]
///            [--k=N] [--kn=N] [--omega=adaptive|0..1]
///            [--score-kernel=batched|exact]
///            [--federation-hops=N] [--federation-topology=mesh|ring|kregular]
///            [--federation-degree=N] [--federation-digest-weight=W]
///            [--fault-profile=none|drops|delays|crashes|chaos]
///            [--fault-seed=N] [--deadline-ms=N] [--max-retries=N]
///            [--churn] [--joins] [--charts] [--json] [--list-methods]
///
/// Defaults reproduce Scenario 3/4 at the paper scale. --shards=N runs
/// the multi-core sharded engine (one scheduler per shard, epoch-applied
/// membership); with --mediators=M each shard runs a group of M mediators
/// behind a shared scheduler (the first is the shard's federation
/// gateway); every other flag composes with it. --federation-hops=N
/// (N >= 1) enables multi-hop borrow chains between shard gateways over
/// the --federation-topology peer graph; hops=1 on the mesh reproduces
/// the legacy one-hop delegation bit-for-bit, while
/// --federation-digest-weight > 0 biases donor choice by the
/// satisfaction digests exchanged at barriers.
/// --fault-profile interposes the deterministic fault plane between each
/// mediator and its scheduler (seeded by --fault-seed, independent of the
/// run seed); --deadline-ms stamps a per-query deadline and --max-retries
/// enables re-mediation with backoff (plus the consecutive-failure health
/// detector). --list-methods prints the allocation-technique registry and
/// exits; --json replaces the tables with a machine-readable run summary
/// on stdout (comparison pipelines diff/plot it directly), including the
/// terminal-outcome taxonomy, fault counters and the per-phase decision
/// timings of the scoring kernel selected by --score-kernel.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/demo_scenarios.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "federation/federation.h"
#include "runtime/fault.h"
#include "util/string_util.h"

using namespace sbqa;

namespace {

struct Flags {
  std::string method = "sbqa";
  size_t volunteers = 200;
  double duration = 600;
  uint64_t seed = 42;
  std::string env = "captive";
  size_t mediators = 1;
  size_t shards = 1;
  size_t k = 20;
  size_t kn = 8;
  std::string omega = "adaptive";
  std::string score_kernel = "batched";
  int federation_hops = 0;  // 0 = federation off (legacy delegation)
  std::string federation_topology = "mesh";
  size_t federation_degree = 4;
  double federation_digest_weight = 0;
  std::string fault_profile = "none";
  uint64_t fault_seed = 1;
  double deadline_ms = 0;
  int max_retries = 0;
  bool churn = false;
  bool joins = false;
  bool charts = false;
  bool json = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: sbqa_cli [--method=sbqa|sqlb|knbest|capacity|qlb|economic|"
      "interest|random|roundrobin]\n"
      "                [--volunteers=N] [--duration=S] [--seed=N]\n"
      "                [--env=captive|autonomous] [--mediators=N]\n"
      "                [--shards=N]\n"
      "                [--k=N] [--kn=N] [--omega=adaptive|0..1]\n"
      "                [--score-kernel=batched|exact]\n"
      "                [--federation-hops=N]\n"
      "                [--federation-topology=mesh|ring|kregular]\n"
      "                [--federation-degree=N]\n"
      "                [--federation-digest-weight=W]\n"
      "                [--fault-profile=%s]\n"
      "                [--fault-seed=N] [--deadline-ms=N] [--max-retries=N]\n"
      "                [--churn] [--joins] [--charts] [--json]\n"
      "                [--list-methods]\n",
      rt::FaultProfileNames().c_str());
  return 2;
}

int ListMethods() {
  std::printf("allocation methods (--method=NAME):\n");
  for (const experiments::MethodDescription& method :
       experiments::KnownMethods()) {
    std::printf("  %-10s %s\n", method.name, method.summary);
  }
  return 0;
}

experiments::MethodSpec MakeSpec(const Flags& flags) {
  experiments::MethodSpec spec;
  if (!experiments::MethodSpecFromName(flags.method, &spec)) {
    std::fprintf(stderr, "unknown method: %s (try --list-methods)\n",
                 flags.method.c_str());
    std::exit(2);
  }
  // Apply the tuning flags where the technique takes them.
  core::SbqaParams sbqa_params = experiments::DefaultSbqaParams();
  sbqa_params.knbest = core::KnBestParams{flags.k, flags.kn};
  if (flags.omega != "adaptive") {
    sbqa_params.omega_mode = core::OmegaMode::kFixed;
    sbqa_params.fixed_omega = std::atof(flags.omega.c_str());
  }
  if (flags.method == "sbqa") {
    spec = experiments::MethodSpec::Sbqa(sbqa_params);
  } else if (flags.method == "knbest") {
    spec = experiments::MethodSpec::KnBest(core::KnBestParams{flags.k,
                                                              flags.kn});
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--method", &value)) {
      flags.method = value;
    } else if (ParseFlag(argv[i], "--volunteers", &value)) {
      flags.volunteers = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--duration", &value)) {
      flags.duration = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      flags.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--env", &value)) {
      flags.env = value;
    } else if (ParseFlag(argv[i], "--mediators", &value)) {
      flags.mediators = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      flags.shards = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--k", &value)) {
      flags.k = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--kn", &value)) {
      flags.kn = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--omega", &value)) {
      flags.omega = value;
    } else if (ParseFlag(argv[i], "--score-kernel", &value)) {
      flags.score_kernel = value;
    } else if (ParseFlag(argv[i], "--federation-hops", &value)) {
      flags.federation_hops = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--federation-topology", &value)) {
      flags.federation_topology = value;
    } else if (ParseFlag(argv[i], "--federation-degree", &value)) {
      flags.federation_degree = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--federation-digest-weight", &value)) {
      flags.federation_digest_weight = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--fault-profile", &value)) {
      flags.fault_profile = value;
    } else if (ParseFlag(argv[i], "--fault-seed", &value)) {
      flags.fault_seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--deadline-ms", &value)) {
      flags.deadline_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--max-retries", &value)) {
      flags.max_retries = std::atoi(value.c_str());
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      flags.churn = true;
    } else if (std::strcmp(argv[i], "--joins") == 0) {
      flags.joins = true;
    } else if (std::strcmp(argv[i], "--charts") == 0) {
      flags.charts = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      flags.json = true;
    } else if (std::strcmp(argv[i], "--list-methods") == 0) {
      return ListMethods();
    } else {
      return Usage();
    }
  }
  if (flags.volunteers == 0 || flags.duration <= 0 || flags.mediators == 0 ||
      flags.shards == 0 || flags.deadline_ms < 0 || flags.max_retries < 0 ||
      flags.federation_hops < 0 || flags.federation_degree < 2 ||
      flags.federation_digest_weight < 0) {
    return Usage();
  }

  experiments::ScenarioConfig config = experiments::BaseDemoConfig(
      flags.seed, flags.volunteers, flags.duration);
  config = flags.env == "autonomous"
               ? experiments::WithAutonomousEnvironment(config)
               : experiments::WithCaptiveEnvironment(config);
  config.mediator_count = flags.mediators;
  config.sim.shard_count = static_cast<uint32_t>(flags.shards);
  if (!core::ScoreKernelKindFromName(flags.score_kernel,
                                     &config.sim.scoring_kernel)) {
    std::fprintf(stderr, "unknown score kernel: %s (known: batched, exact)\n",
                 flags.score_kernel.c_str());
    return 2;
  }
  if (flags.federation_hops > 0) {
    config.federation.enabled = true;
    config.federation.hop_budget =
        static_cast<uint32_t>(flags.federation_hops);
    config.federation.degree =
        static_cast<uint32_t>(flags.federation_degree);
    config.federation.digest_weight = flags.federation_digest_weight;
    if (!federation::TopologyFromName(flags.federation_topology.c_str(),
                                      &config.federation.topology)) {
      std::fprintf(stderr,
                   "unknown federation topology: %s "
                   "(known: mesh, ring, kregular)\n",
                   flags.federation_topology.c_str());
      return 2;
    }
  }
  // The JSON summary carries the per-phase decision timings.
  config.sim.decision_timing = flags.json;
  config.method = MakeSpec(flags);
  if (flags.churn) {
    config.churn.enabled = true;
    config.churn.mean_online = 400;
    config.churn.mean_offline = 60;
  }
  if (flags.joins) {
    config.joins.enabled = true;
    config.joins.rate =
        0.05 * static_cast<double>(flags.volunteers) / 200.0;
    config.joins.max_joins = flags.volunteers;
  }
  config.fault_plan.seed = flags.fault_seed;
  if (!rt::FaultProfileByName(flags.fault_profile, &config.fault_plan)) {
    std::fprintf(stderr, "unknown fault profile: %s (known: %s)\n",
                 flags.fault_profile.c_str(),
                 rt::FaultProfileNames().c_str());
    return 2;
  }
  config.query_deadline = flags.deadline_ms / 1000.0;
  config.mediator.max_retries = flags.max_retries;
  if (flags.max_retries > 0) {
    // Retrying makes sense only with a health signal: suspect a provider
    // after 3 consecutive failures and probe it back after 30s.
    config.mediator.failure_threshold = 3;
  }

  if (!flags.json) {
    std::printf("sbqa_cli: %s, %zu volunteers, %.0fs, %s, %zu mediator(s), "
                "%zu shard(s), seed %llu\n\n",
                experiments::MethodName(config.method).c_str(),
                flags.volunteers, flags.duration, flags.env.c_str(),
                flags.mediators, flags.shards,
                static_cast<unsigned long long>(flags.seed));
  }

  const experiments::RunResult result = experiments::RunScenario(config);
  if (flags.json) {
    std::printf("%s", experiments::RunSummaryJson(result).c_str());
    return 0;
  }
  const std::vector<experiments::RunResult> results{result};
  if (config.fault_plan.enabled() || flags.max_retries > 0 ||
      flags.deadline_ms > 0) {
    const metrics::RunSummary& s = result.summary;
    std::printf(
        "robustness: %lld satisfied, %lld recovered, %lld timed out, "
        "%lld failed (%lld retries; faults: %lld dropped, %lld delayed, "
        "%lld crashed; %lld suspected, %lld probed)\n\n",
        static_cast<long long>(s.queries_satisfied),
        static_cast<long long>(s.queries_recovered),
        static_cast<long long>(s.queries_timed_out),
        static_cast<long long>(s.queries_failed),
        static_cast<long long>(s.retry_attempts),
        static_cast<long long>(s.fault_sends_dropped),
        static_cast<long long>(s.fault_sends_delayed),
        static_cast<long long>(s.fault_sends_crashed),
        static_cast<long long>(s.providers_suspected),
        static_cast<long long>(s.providers_probed));
  }
  std::printf("%s\n", experiments::OverviewTable(results).ToString().c_str());
  std::printf("%s\n",
              experiments::PerformanceTable(results).ToString().c_str());
  if (flags.env == "autonomous" || flags.churn || flags.joins) {
    std::printf("%s\n",
                experiments::RetentionTable(results).ToString().c_str());
  }
  if (flags.charts) {
    std::printf("%s\n",
                experiments::SeriesChart(
                    results, experiments::ProviderSatisfactionSeries,
                    "Provider satisfaction over time")
                    .c_str());
    std::printf("%s\n", experiments::SeriesChart(
                            results, experiments::ResponseTimeSeries,
                            "Recent mean response time (s) over time")
                            .c_str());
  }
  return 0;
}
