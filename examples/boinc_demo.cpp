/// \file
/// The paper's demonstration setting: BOINC with three research projects —
/// SETI@home (popular), proteins@home (normal), Einstein@home (unpopular) —
/// and a volunteer population with popularity-driven interests.
///
/// Runs the headline techniques (SbQA, capacity-based, economic) in both a
/// captive and an autonomous environment and renders the same views the
/// demo GUIs showed: satisfaction tables, per-project breakdowns, and
/// on-line time-series charts (paper Fig. 2b).

#include <cstdio>

#include "experiments/demo_scenarios.h"
#include "experiments/report.h"
#include "util/ascii_chart.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace sbqa;
using experiments::RunResult;

namespace {

void PrintPerProject(const std::vector<RunResult>& results) {
  util::TextTable table;
  table.SetHeader({"project", "method", "satisfaction", "adequation",
                   "queries"});
  for (const RunResult& r : results) {
    for (const metrics::ParticipantSnapshot& c : r.consumers) {
      table.AddRow({c.label, r.summary.method,
                    util::FormatDouble(c.satisfaction, 3),
                    util::FormatDouble(c.adequation, 3),
                    util::StrFormat("%lld",
                                    static_cast<long long>(c.interactions))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("SbQA on BOINC: three projects, 200 volunteers\n");
  std::printf("=============================================\n\n");

  const std::vector<experiments::MethodSpec> methods =
      experiments::HeadlineMethods();

  // --- Captive environment (paper Scenarios 1 & 3) -------------------------
  std::printf("Captive environment (nobody may leave)\n");
  std::printf("--------------------------------------\n");
  const std::vector<RunResult> captive = experiments::CompareMethods(
      experiments::Scenario3Config(/*seed=*/42), methods);
  std::printf("%s\n",
              experiments::SatisfactionTable(captive).ToString().c_str());
  std::printf("%s\n",
              experiments::PerformanceTable(captive).ToString().c_str());
  std::printf("Per-project view:\n");
  PrintPerProject(captive);

  std::printf("%s\n",
              experiments::SeriesChart(
                  captive, experiments::ProviderSatisfactionSeries,
                  "Provider satisfaction over time (captive)")
                  .c_str());

  // --- Autonomous environment (paper Scenarios 2 & 4) ----------------------
  std::printf("Autonomous environment (providers leave < 0.35, consumers "
              "stop < 0.5)\n");
  std::printf("------------------------------------------------------------"
              "--------\n");
  const std::vector<RunResult> autonomous = experiments::CompareMethods(
      experiments::Scenario4Config(/*seed=*/42), methods);
  std::printf("%s\n",
              experiments::RetentionTable(autonomous).ToString().c_str());
  std::printf("%s\n",
              experiments::OverviewTable(autonomous).ToString().c_str());

  std::printf("%s\n",
              experiments::SeriesChart(
                  autonomous, experiments::AliveProvidersSeries,
                  "Volunteers still online over time (autonomous)")
                  .c_str());
  std::printf("%s\n",
              experiments::SeriesChart(
                  autonomous, experiments::ResponseTimeSeries,
                  "Recent mean response time (s) over time (autonomous)")
                  .c_str());

  std::printf(
      "SbQA keeps dissatisfied volunteers rare, so the platform retains\n"
      "capacity that the interest-blind baselines bleed away.\n");
  return 0;
}
