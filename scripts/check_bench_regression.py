#!/usr/bin/env python3
"""Bench regression gate for CI.

Compares a freshly measured BENCH_event_engine.json against the baseline
committed in the repository and fails (exit 1) when

  * the end-to-end ns/query of the `exact` run regressed by more than the
    allowed factor, after normalizing for machine speed, or
  * the steady-state allocations-per-query count became nonzero.

Machine normalization: every bench run also measures the seed-engine
replica ("legacy" scheduler rows), a fixed workload whose throughput is a
pure function of the host. The fresh ns/query is scaled by the ratio of
the fresh machine's legacy throughput to the baseline machine's before
comparing, so a slow shared CI runner does not produce a false regression
and a fast one cannot mask a real one.

Usage: check_bench_regression.py <fresh.json> <committed-baseline.json>
       [--max-regression 2.0]
"""

import argparse
import json
import sys


def exact_ns_per_query(doc):
    for run in doc["end_to_end"]["runs"]:
        if run["run"] == "exact":
            return float(run["ns_per_query"])
    raise KeyError("no 'exact' end_to_end run in bench JSON")


def legacy_events_per_sec(doc):
    rates = [float(row["events_per_sec"]) for row in doc["scheduler"]
             if row["engine"] == "legacy"]
    if not rates:
        raise KeyError("no legacy scheduler rows in bench JSON")
    return sum(rates) / len(rates)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when machine-normalized fresh ns/query "
                             "exceeds baseline by more than this factor")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    machine_speed = legacy_events_per_sec(fresh) / legacy_events_per_sec(
        baseline)
    fresh_ns = exact_ns_per_query(fresh)
    normalized_ns = fresh_ns * machine_speed
    baseline_ns = exact_ns_per_query(baseline)
    ratio = normalized_ns / baseline_ns
    print(f"machine speed vs baseline host: {machine_speed:.2f}x")
    print(f"ns/query: fresh={fresh_ns:.0f} normalized={normalized_ns:.0f} "
          f"baseline={baseline_ns:.0f} ratio={ratio:.2f}x "
          f"(limit {args.max_regression:.2f}x)")

    failed = False
    if ratio > args.max_regression:
        print("FAIL: end-to-end ns/query regressed beyond the limit")
        failed = True

    allocs = float(fresh["allocations"]["per_query_steady_state"])
    print(f"steady-state allocations/query: {allocs:.3f}")
    if allocs != 0.0:
        print("FAIL: steady-state mediation is no longer allocation-free")
        failed = True

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
