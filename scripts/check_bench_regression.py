#!/usr/bin/env python3
"""Bench regression gates for CI.

Two modes:

--mode event_engine (default): compares a freshly measured
BENCH_event_engine.json against the baseline committed in the repository
and fails (exit 1) when

  * the end-to-end ns/query of the `exact` run regressed by more than the
    allowed factor, after normalizing for machine speed, or
  * the steady-state allocations-per-query count became nonzero, or
  * the pending-depth sweep (raw `structure` layer: util::LadderQueue vs
    the 4-ary EventHeap over bare entries) shows the ladder behind the
    heap at depths <= 10k, below 3x the heap at depths >= 1M, or
    allocating in steady state — at any layer or depth (a same-host
    ratio, so no machine normalization is needed).

Machine normalization: every bench run also measures the seed-engine
replica ("legacy" scheduler rows), a fixed workload whose throughput is a
pure function of the host. The fresh ns/query is scaled by the ratio of
the fresh machine's legacy throughput to the baseline machine's before
comparing, so a slow shared CI runner does not produce a false regression
and a fast one cannot mask a real one.

--mode sharding: gates a freshly measured BENCH_sharding.json and fails
(exit 1) when

  * the steady-state allocations-per-query of the sharded engine is
    nonzero — quiet population AND under availability churn flowing
    through the epoch-based membership log (enforced on every host), or
  * the epoch-apply cost of the churn+joins turnover sweep exceeds
    --max-epoch-share (default 0.05) of the run's wall time, or
  * the 4-shard end-to-end speedup over 1 shard on the largest provider
    sweep drops below --min-speedup (default 2.0) — enforced only when
    the measuring host has >= 4 cores (the JSON records host_cores);
    wall-clock parallel speedup cannot exist without hardware
    parallelism, so single-core hosts only run the allocation gate.

--mode serve: gates a freshly measured BENCH_serve.json (the
thread-per-shard wall-clock saturation sweep) and fails (exit 1) when

  * the steady-state allocations-per-query of any sweep row is nonzero —
    the live Submit -> mediate -> callback path must stay allocation-free
    at every shard count (enforced on every host), or
  * any sweep row did not terminate cleanly (submitted != finalized), or
  * the 4-shard throughput speedup over 1 shard drops below
    --min-speedup (default 2.0) — enforced only when the measuring host
    has >= 4 cores (the JSON records host_cores); a single-core host
    cannot exhibit parallel speedup, so it only runs the allocation and
    completeness gates, or
  * any skew_sweep row (one hot consumer at 50% of traffic) allocates or
    leaks queries — imbalance must not break the steady-state
    guarantees; no throughput bar applies there because the hot
    consumer's home shard is the bottleneck by construction.

--mode scaling: gates the scoring-kernel sweep of a freshly measured
BENCH_scaling.json and fails (exit 1) when

  * the kernel_sweep section is missing, or any kn group is missing its
    exact or batched row, or
  * at any kn, the batched kernel's hot phases (intentions + score, the
    work the SoA kernel vectorizes) are not at least --min-speedup
    (default 2.0) times faster than the exact std::pow path's — a
    same-host, same-run ratio, so no machine normalization is needed.

--mode chaos: gates a freshly measured BENCH_chaos.json and fails
(exit 1) when

  * any fault-rate sweep row is not terminally complete (submitted !=
    finalized, or the outcome taxonomy does not sum to finalized) — the
    fault plane must never leak a query, or
  * the steady-state allocations-per-query of the retry ladder (full
    timeout -> abandon -> backoff -> re-mediate cycle under a 100%-drop
    plane) or of the synchronous shed path became nonzero, or
  * the wall-clock cost per good query (satisfied + recovered) at 5%
    dropped dispatches exceeds --max-fault-degradation (default 2.0)
    times the fault-free baseline row of the same run — a same-host
    ratio, so no machine normalization is needed.

--mode federation: gates a freshly measured BENCH_federation.json (the
multi-hop borrow-chain scarcity sweep) and fails (exit 1) when

  * any sweep row is not terminally complete (submitted != finalized), or
    its chain accounting does not reconcile — every chain that starts
    consumes exactly one terminal borrow (delegated == borrowed), the
    summary's hop histogram recomposes the counters
    (round(mean_borrow_hops * finalized) == delegated + forwarded, within
    rounding), and multi-hop chains never exceed either relays or started
    chains, or
  * the ring/budget-4 row's scarce-class goodput is below
    --min-goodput-ratio (default 1.5) times the ring/budget-1 row's — the
    whole point of multi-hop chains is reaching donors beyond the
    one-hop neighborhood — or the budget-4 row shows no multi-hop chains
    at all, or
  * the forward-path allocation audit's steady state allocates (the
    forwarded + re-homed chain rows must stay at exactly 0 allocs/query),
    or the audited phase performed no relays (steady_forwarded == 0 would
    mean the audit measured nothing).

Usage: check_bench_regression.py <fresh.json> [<committed-baseline.json>]
       [--max-regression 2.0]
       [--mode event_engine|sharding|serve|scaling|chaos|federation]
       [--min-speedup 2.0] [--max-epoch-share 0.05]
       [--max-fault-degradation 2.0] [--min-goodput-ratio 1.5]
"""

import argparse
import json
import sys


def exact_ns_per_query(doc):
    for run in doc["end_to_end"]["runs"]:
        if run["run"] == "exact":
            return float(run["ns_per_query"])
    raise KeyError("no 'exact' end_to_end run in bench JSON")


def legacy_events_per_sec(doc):
    rates = [float(row["events_per_sec"]) for row in doc["scheduler"]
             if row["engine"] == "legacy"]
    if not rates:
        raise KeyError("no legacy scheduler rows in bench JSON")
    return sum(rates) / len(rates)


def check_depth_sweep(fresh):
    sweep = fresh.get("depth_sweep")
    if sweep is None:
        print("NOTE: no depth_sweep section (pre-ladder JSON) — "
              "depth gate skipped")
        return False
    failed = False

    # Ladder steady state must be allocation-free at every layer/depth.
    for row in sweep:
        if row["engine"] != "ladder":
            continue
        allocs = float(row["allocs_per_event"])
        if allocs != 0.0:
            print(f"FAIL: ladder ({row['layer']}, depth {row['depth']}) "
                  f"allocates {allocs:.3f}/event in steady state")
            failed = True

    # Throughput bars run on the raw structures, where the asymptotic
    # difference is undiluted by the (shared) pool/dispatch overhead.
    by_depth = {}
    for row in sweep:
        if row.get("layer") == "structure":
            by_depth.setdefault(int(row["depth"]), {})[row["engine"]] = row
    if not by_depth:
        print("FAIL: depth_sweep has no raw 'structure' rows")
        return True
    for depth in sorted(by_depth):
        pair = by_depth[depth]
        if "heap" not in pair or "ladder" not in pair:
            print(f"FAIL: depth {depth} is missing a heap or ladder row")
            failed = True
            continue
        ratio = (float(pair["ladder"]["events_per_sec"]) /
                 float(pair["heap"]["events_per_sec"]))
        bar = 3.0 if depth >= 1_000_000 else 1.0
        print(f"depth {depth:>8}: ladder {ratio:.2f}x heap "
              f"(bar {bar:.2f}x)")
        if ratio < bar:
            print(f"FAIL: ladder fell below the {bar:.2f}x bar at "
                  f"depth {depth}")
            failed = True
    return failed


def check_event_engine(fresh, baseline, max_regression):
    machine_speed = legacy_events_per_sec(fresh) / legacy_events_per_sec(
        baseline)
    fresh_ns = exact_ns_per_query(fresh)
    normalized_ns = fresh_ns * machine_speed
    baseline_ns = exact_ns_per_query(baseline)
    ratio = normalized_ns / baseline_ns
    print(f"machine speed vs baseline host: {machine_speed:.2f}x")
    print(f"ns/query: fresh={fresh_ns:.0f} normalized={normalized_ns:.0f} "
          f"baseline={baseline_ns:.0f} ratio={ratio:.2f}x "
          f"(limit {max_regression:.2f}x)")

    failed = False
    if ratio > max_regression:
        print("FAIL: end-to-end ns/query regressed beyond the limit")
        failed = True

    allocs = float(fresh["allocations"]["per_query_steady_state"])
    print(f"steady-state allocations/query: {allocs:.3f}")
    if allocs != 0.0:
        print("FAIL: steady-state mediation is no longer allocation-free")
        failed = True

    if check_depth_sweep(fresh):
        failed = True
    return failed


def check_sharding(fresh, min_speedup, max_epoch_share):
    failed = False

    allocs = float(fresh["allocations"]["per_query_steady_state"])
    shards = int(fresh["allocations"]["shards"])
    print(f"steady-state allocations/query across {shards} shards: "
          f"{allocs:.3f}")
    if allocs != 0.0:
        print("FAIL: the sharded steady state is no longer allocation-free")
        failed = True

    churn = fresh.get("allocations_churn")
    if churn is None:
        print("NOTE: no allocations_churn section (pre-elastic-membership "
              "JSON) — churn allocation gate skipped")
    else:
        churn_allocs = float(churn["per_query_steady_state"])
        print(f"steady-state allocations/query under availability churn: "
              f"{churn_allocs:.3f}")
        if churn_allocs != 0.0:
            print("FAIL: availability churn is no longer allocation-free "
                  "in steady state")
            failed = True

    turnover = fresh.get("turnover")
    if turnover is None:
        print("NOTE: no turnover section (pre-elastic-membership JSON) — "
              "epoch-apply gate skipped")
    else:
        share = float(turnover["epoch_apply_share"])
        print(f"epoch-apply share of wall time in the churn+joins sweep: "
              f"{share:.4f} (limit {max_epoch_share:.2f}); "
              f"{turnover['membership_ops']} membership ops over "
              f"{turnover['membership_epochs']} epochs")
        if share >= max_epoch_share:
            print("FAIL: membership epoch application costs too large a "
                  "share of the run")
            failed = True
        if int(turnover["provider_joins"]) <= 0:
            print("FAIL: the turnover sweep materialized no runtime joins")
            failed = True

    sweeps = fresh.get("sweeps", [])
    if not sweeps:
        # A trimmed smoke run (SBQA_BENCH_MAX_PROVIDERS below the smallest
        # sweep) has nothing to gate the speedup on; the allocation gate
        # above already ran. CI runs untrimmed, so its sweeps are present.
        print("NOTE: no sweeps in the bench JSON (trimmed run) — "
              "speedup bar skipped")
        return failed
    largest = max(sweeps, key=lambda s: int(s["providers"]))
    four = [r for r in largest["runs"] if int(r["shards"]) == 4]
    if not four:
        print("FAIL: no 4-shard run in the largest sweep")
        return True
    speedup = float(four[0]["speedup_vs_1"])
    host_cores = int(fresh.get("host_cores", 0))
    print(f"4-shard speedup at {largest['providers']} providers: "
          f"{speedup:.2f}x on a {host_cores}-core host "
          f"(bar {min_speedup:.2f}x, enforced at >= 4 cores)")
    if host_cores >= 4:
        if speedup < min_speedup:
            print("FAIL: 4-shard end-to-end speedup dropped below the bar")
            failed = True
    else:
        print("NOTE: < 4 cores — the parallel-speedup bar is not "
              "enforceable on this host; allocation gate only")
    return failed


def check_serve(fresh, min_speedup):
    failed = False
    host_cores = int(fresh.get("host_cores", 0))

    rows = {int(r["shards"]): r for r in fresh.get("sweep", [])}
    if not rows:
        print("FAIL: the serve bench JSON has no sweep rows")
        return True
    for shards in sorted(rows):
        row = rows[shards]
        allocs = float(row["allocs_per_query"])
        complete = int(row["queries_finalized"]) == int(row["queries"])
        print(f"{shards} shard(s): {row['qps']:.0f} queries/s, "
              f"{allocs:.4f} allocs/query, "
              f"{row['queries_finalized']}/{row['queries']} finalized")
        if allocs != 0.0:
            print(f"FAIL: the {shards}-shard serving steady state is no "
                  "longer allocation-free")
            failed = True
        if not complete:
            print(f"FAIL: the {shards}-shard run leaked queries "
                  "(submitted != finalized)")
            failed = True

    skew_rows = fresh.get("skew_sweep", [])
    if not skew_rows:
        print("NOTE: no skew_sweep section (pre-skew JSON) — skew gate "
              "skipped")
    for row in skew_rows:
        shards = int(row["shards"])
        allocs = float(row["allocs_per_query"])
        complete = int(row["queries_finalized"]) == int(row["queries"])
        print(f"skewed, {shards} shard(s): {row['qps']:.0f} queries/s, "
              f"{allocs:.4f} allocs/query, "
              f"{row['queries_finalized']}/{row['queries']} finalized")
        if allocs != 0.0:
            print(f"FAIL: the skewed {shards}-shard steady state is no "
                  "longer allocation-free")
            failed = True
        if not complete:
            print(f"FAIL: the skewed {shards}-shard run leaked queries "
                  "(submitted != finalized)")
            failed = True

    one = rows.get(1)
    four = rows.get(4)
    if four is None:
        print("NOTE: no 4-shard row (trimmed sweep) — speedup bar skipped")
        return failed
    speedup = float(four["qps"]) / float(one["qps"]) if one else 0.0
    print(f"4-shard throughput speedup over 1 shard: {speedup:.2f}x on a "
          f"{host_cores}-core host (bar {min_speedup:.2f}x, enforced at "
          ">= 4 cores)")
    if host_cores >= 4:
        if speedup < min_speedup:
            print("FAIL: 4-shard serving throughput speedup dropped below "
                  "the bar")
            failed = True
    else:
        print("NOTE: < 4 cores — the parallel-speedup bar is not "
              "enforceable on this host; allocation gate only")
    return failed


def check_scaling(fresh, min_speedup):
    sweep = fresh.get("kernel_sweep")
    if not sweep:
        print("FAIL: the scaling bench JSON has no kernel_sweep section "
              "(run bench_scaling from this tree)")
        return True
    failed = False
    by_kn = {}
    for row in sweep:
        by_kn.setdefault(int(row["kn"]), {})[str(row["kernel"])] = row
    for kn in sorted(by_kn):
        pair = by_kn[kn]
        if "exact" not in pair or "batched" not in pair:
            print(f"FAIL: kn={kn} is missing an exact or batched row")
            failed = True
            continue
        exact_ns = (float(pair["exact"]["intentions_ns"]) +
                    float(pair["exact"]["score_ns"]))
        batched_ns = (float(pair["batched"]["intentions_ns"]) +
                      float(pair["batched"]["score_ns"]))
        if batched_ns <= 0:
            print(f"FAIL: kn={kn} batched hot phases measured <= 0 ns")
            failed = True
            continue
        ratio = exact_ns / batched_ns
        print(f"kn {kn:>4}: intentions+score exact={exact_ns:.0f}ns "
              f"batched={batched_ns:.0f}ns -> {ratio:.2f}x "
              f"(bar {min_speedup:.2f}x)")
        if ratio < min_speedup:
            print(f"FAIL: the batched kernel's hot phases fell below the "
                  f"{min_speedup:.2f}x bar at kn={kn}")
            failed = True
    return failed


def check_chaos(fresh, max_fault_degradation):
    failed = False

    rows = {float(r["drop_prob"]): r for r in fresh["sweep"]}
    for prob in sorted(rows):
        row = rows[prob]
        terminal = str(row["all_terminal"]) == "true"
        print(f"drop {100 * prob:4.0f}%: {row['good_queries']}/"
              f"{row['queries_finalized']} good, "
              f"{row['retry_attempts']} retries, "
              f"terminal={'yes' if terminal else 'NO'}")
        if not terminal:
            print("FAIL: a faulted run leaked queries (submitted != "
                  "finalized or taxonomy does not sum)")
            failed = True

    for key, label in (("retry_per_query_steady_state", "retry ladder"),
                       ("shed_per_query_steady_state", "shed path")):
        allocs = float(fresh["allocations"][key])
        print(f"steady-state allocations/query on the {label}: {allocs:.3f}")
        if allocs != 0.0:
            print(f"FAIL: the {label} is no longer allocation-free")
            failed = True

    baseline_row = rows.get(0.0)
    faulted_row = rows.get(0.05)
    if baseline_row is None or faulted_row is None:
        print("FAIL: the sweep is missing the 0% or 5% drop row")
        return True
    baseline_ns = float(baseline_row["ns_per_good_query"])
    faulted_ns = float(faulted_row["ns_per_good_query"])
    if baseline_ns <= 0 or int(faulted_row["good_queries"]) <= 0:
        print("FAIL: the sweep produced no good queries to compare")
        return True
    ratio = faulted_ns / baseline_ns
    print(f"ns/good-query: 0% fault={baseline_ns:.0f} "
          f"5% fault={faulted_ns:.0f} ratio={ratio:.2f}x "
          f"(limit {max_fault_degradation:.2f}x)")
    if ratio > max_fault_degradation:
        print("FAIL: a 5% dispatch-drop rate degrades goodput cost beyond "
              "the limit")
        failed = True
    return failed


def check_federation(fresh, min_goodput_ratio):
    failed = False

    rows = {}
    for row in fresh.get("sweep", []):
        rows[str(row["row"])] = row
        complete = int(row["queries_finalized"]) == int(row["queries"])
        delegated = int(row["queries_delegated"])
        borrowed = int(row["queries_borrowed"])
        forwarded = int(row["queries_forwarded"])
        multi_hop = int(row["queries_multi_hop"])
        hop_weight = round(float(row["mean_borrow_hops"]) *
                           int(row["queries_finalized"]))
        print(f"{row['row']:>15}: {row['scarce_served']}/"
              f"{row['scarce_finalized']} scarce served, "
              f"{delegated} delegated, {forwarded} forwarded, "
              f"{multi_hop} multi-hop, "
              f"{row['queries_finalized']}/{row['queries']} finalized")
        if not complete:
            print(f"FAIL: row {row['row']} leaked queries "
                  "(submitted != finalized)")
            failed = True
        if delegated != borrowed:
            print(f"FAIL: row {row['row']} breaks chain accounting "
                  f"(delegated {delegated} != borrowed {borrowed})")
            failed = True
        if abs(hop_weight - (delegated + forwarded)) > 1:
            print(f"FAIL: row {row['row']}'s hop histogram does not "
                  f"recompose the counters ({hop_weight} != "
                  f"{delegated} + {forwarded})")
            failed = True
        if multi_hop > forwarded or multi_hop > delegated:
            print(f"FAIL: row {row['row']} counts more multi-hop chains "
                  "than relays or started chains")
            failed = True
    if not rows:
        print("FAIL: the federation bench JSON has no sweep rows")
        return True

    b1 = rows.get("ring-b1")
    b4 = rows.get("ring-b4")
    if b1 is None or b4 is None:
        print("FAIL: the sweep is missing the ring-b1 or ring-b4 row")
        return True
    served_b1 = int(b1["scarce_served"])
    served_b4 = int(b4["scarce_served"])
    ratio = served_b4 / served_b1 if served_b1 > 0 else float("inf")
    print(f"scarce-class goodput, ring budget 4 vs budget 1: "
          f"{served_b4}/{served_b1} = {ratio:.2f}x "
          f"(bar {min_goodput_ratio:.2f}x)")
    if ratio < min_goodput_ratio:
        print("FAIL: multi-hop chains no longer buy the scarce-class "
              "goodput bar over single-hop delegation")
        failed = True
    if int(b4["queries_multi_hop"]) <= 0:
        print("FAIL: the budget-4 row routed no multi-hop chains")
        failed = True

    allocs = fresh["allocations"]
    steady = float(allocs["per_query_steady_state"])
    relays = int(allocs["steady_forwarded"])
    print(f"forward-path steady-state allocations/query: {steady:.3f} "
          f"({relays} relays in the measured phase)")
    if steady != 0.0:
        print("FAIL: the forwarded + re-homed chain path is no longer "
              "allocation-free in steady state")
        failed = True
    if relays <= 0:
        print("FAIL: the allocation audit measured a phase with no relays")
        failed = True
    return failed


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="committed baseline JSON (event_engine mode)")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="event_engine: fail when machine-normalized "
                             "fresh ns/query exceeds baseline by more than "
                             "this factor")
    parser.add_argument("--mode",
                        choices=["event_engine", "sharding", "serve",
                                 "scaling", "chaos", "federation"],
                        default="event_engine")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="sharding/serve: minimum 4-shard speedup over "
                             "1 shard (hosts with >= 4 cores); scaling: "
                             "minimum batched-over-exact hot-phase speedup")
    parser.add_argument("--max-epoch-share", type=float, default=0.05,
                        help="sharding: maximum fraction of the turnover "
                             "run's wall time spent applying membership "
                             "epochs")
    parser.add_argument("--max-fault-degradation", type=float, default=2.0,
                        help="chaos: maximum ratio of ns/good-query at 5%% "
                             "dropped dispatches over the fault-free "
                             "baseline row")
    parser.add_argument("--min-goodput-ratio", type=float, default=1.5,
                        help="federation: minimum scarce-class goodput of "
                             "the ring/budget-4 row over the ring/budget-1 "
                             "row")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)

    if args.mode == "event_engine":
        if args.baseline is None:
            parser.error("event_engine mode requires a baseline JSON")
        with open(args.baseline) as f:
            baseline = json.load(f)
        failed = check_event_engine(fresh, baseline, args.max_regression)
    elif args.mode == "chaos":
        failed = check_chaos(fresh, args.max_fault_degradation)
    elif args.mode == "serve":
        failed = check_serve(fresh, args.min_speedup)
    elif args.mode == "federation":
        failed = check_federation(fresh, args.min_goodput_ratio)
    elif args.mode == "scaling":
        failed = check_scaling(fresh, args.min_speedup)
    else:
        failed = check_sharding(fresh, args.min_speedup,
                                args.max_epoch_share)

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
