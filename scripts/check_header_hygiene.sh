#!/bin/sh
# Header-hygiene gate of the public facade: compiles a translation unit
# that includes ONLY the umbrella header (src/sbqa.h) and fails if any
# header under src/sim/ sneaks into its include closure — the public API
# must stay embeddable without dragging the discrete-event simulation
# along. Run from the repository root:
#
#   sh scripts/check_header_hygiene.sh [CXX]

set -e

CXX="${1:-${CXX:-g++}}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

cat > "$workdir/facade_tu.cc" <<'EOF'
#include "sbqa.h"

// The facade alone must declare everything an embedder needs.
int main() {
  sbqa::EngineOptions options;
  options.mode = sbqa::EngineMode::kWallClock;
  options.wallclock.manual_clock = true;
  sbqa::Engine engine(std::move(options));
  (void)engine;
  return 0;
}
EOF

# 1. The TU must compile standalone.
"$CXX" -std=c++20 -Wall -Wextra -Werror -Isrc -c "$workdir/facade_tu.cc" \
  -o "$workdir/facade_tu.o"

# 2. Its preprocessor dependency closure must not touch src/sim/.
"$CXX" -std=c++20 -Isrc -M "$workdir/facade_tu.cc" > "$workdir/deps.txt"
if tr ' \\' '\n\n' < "$workdir/deps.txt" | grep -q 'src/sim/'; then
  echo "FAIL: src/sbqa.h leaks simulation headers into the public API:" >&2
  tr ' \\' '\n\n' < "$workdir/deps.txt" | grep 'src/sim/' | sort -u >&2
  exit 1
fi

echo "OK: public facade compiles standalone and leaks no sim/ headers"
